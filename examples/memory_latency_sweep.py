#!/usr/bin/env python3
"""Memory-latency tolerance study (the motivation behind Figure 1).

Sweeps the main-memory latency from a perfect L2 to 1000 cycles for three
machines and for two very different workloads:

* a streaming floating-point kernel (daxpy) — the regime the paper
  targets, where a large window hides almost any latency;
* a pointer-chasing integer kernel — the regime where no window size
  helps because every load depends on the previous one.

The output shows how the Commit Out-of-Order machine tracks the
unbuildable big-window baseline on the FP code while, as the paper notes,
neither machine can do much for serial pointer chasing.
"""

from repro import api, cooo_config, scaled_baseline
from repro.analysis import format_table
from repro.workloads import daxpy, pointer_chase


def run_sweep(trace, latencies):
    rows = []
    for latency in latencies:
        perfect = latency == "perfect"
        memory_latency = 0 if perfect else latency
        machines = {
            "baseline-128": scaled_baseline(
                window=128, memory_latency=memory_latency, perfect_l2=perfect
            ),
            "baseline-4096": scaled_baseline(
                window=4096, memory_latency=memory_latency, perfect_l2=perfect
            ),
            "COoO-64/SLIQ-1024": cooo_config(
                iq_size=64, sliq_size=1024, memory_latency=memory_latency, perfect_l2=perfect
            ),
        }
        row = {"memory latency": latency}
        for name, config in machines.items():
            row[name] = round(api.run(config, trace).ipc, 3)
        rows.append(row)
    return rows


def main() -> None:
    latencies = ["perfect", 100, 500, 1000]

    fp_trace = daxpy(elements=400)
    print(f"=== streaming FP kernel ({fp_trace.name}, {len(fp_trace)} instructions) ===")
    print(format_table(run_sweep(fp_trace, latencies)))
    print()

    int_trace = pointer_chase(hops=150)
    print(f"=== pointer chasing ({int_trace.name}, {len(int_trace)} instructions) ===")
    print(format_table(run_sweep(int_trace, latencies)))
    print()
    print(
        "Note how the window (and the COoO mechanisms) recover the FP kernel's\n"
        "performance as latency grows, while pointer chasing stays latency-bound\n"
        "on every machine — exactly the contrast the paper draws in its introduction."
    )


if __name__ == "__main__":
    main()
