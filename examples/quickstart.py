#!/usr/bin/env python3
"""Quickstart: compare the paper's machine against two baselines.

Runs one streaming floating-point kernel (daxpy) on three machines:

* a buildable conventional processor with a 128-entry window,
* the unbuildable 4096-entry conventional processor (the paper's "limit"),
* the paper's Commit Out-of-Order machine: 8 checkpoints, a 128-entry
  issue queue / pseudo-ROB and a 2048-entry SLIQ.

Expected outcome (the paper's headline result): the COoO machine gets
close to the unbuildable limit while using an order of magnitude fewer
entries in its critical structures, and far outperforms the buildable
128-entry baseline.
"""

from repro import api, cooo_config, scaled_baseline
from repro.analysis import format_table
from repro.workloads import daxpy


def main() -> None:
    memory_latency = 1000  # cycles to main memory, as in Table 1
    trace = daxpy(elements=600)
    print(f"workload: {trace.name}, {len(trace)} dynamic instructions, "
          f"{trace.load_fraction():.0%} loads, memory latency {memory_latency} cycles\n")

    machines = {
        "baseline-128 (buildable)": scaled_baseline(window=128, memory_latency=memory_latency),
        "baseline-4096 (unbuildable limit)": scaled_baseline(window=4096, memory_latency=memory_latency),
        "COoO 8ckpt / IQ128 / SLIQ2048": cooo_config(
            iq_size=128, sliq_size=2048, checkpoints=8, memory_latency=memory_latency
        ),
    }

    rows = []
    results = {}
    for name, config in machines.items():
        result = api.run(config, trace)
        results[name] = result
        rows.append(
            {
                "machine": name,
                "ipc": round(result.ipc, 3),
                "cycles": result.cycles,
                "avg in-flight": round(result.mean_in_flight, 0),
                "L2 load miss %": round(100 * result.l2_load_miss_fraction, 1),
            }
        )
    print(format_table(rows))

    base = results["baseline-128 (buildable)"].ipc
    limit = results["baseline-4096 (unbuildable limit)"].ipc
    cooo = results["COoO 8ckpt / IQ128 / SLIQ2048"].ipc
    print()
    print(f"COoO vs. 128-entry baseline : {cooo / base:.2f}x")
    print(f"COoO vs. 4096-entry limit   : {100 * cooo / limit:.1f}% of the limit's IPC")


if __name__ == "__main__":
    main()
