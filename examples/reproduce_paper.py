#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section.

Runs the full experiment registry (Figures 1, 7, 9, 10, 11, 12, 13, 14 and
the checkpoint-policy ablation) and prints each experiment's table.  With
the default quick grids and suite scale this takes a few minutes of pure
Python simulation; pass ``--full`` for the complete parameter grids and
``--scale`` to grow the workloads.

Usage::

    python examples/reproduce_paper.py                 # quick grids
    python examples/reproduce_paper.py --full --scale 1.0
    python examples/reproduce_paper.py --only figure09 figure13
"""

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, available_experiments


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=None,
                        help="suite scale (default: the harness default)")
    parser.add_argument("--full", action="store_true",
                        help="use the paper's full parameter grids instead of the quick ones")
    parser.add_argument("--only", nargs="*", default=None,
                        help=f"subset of experiments to run (from: {', '.join(available_experiments())})")
    args = parser.parse_args(argv)

    names = args.only if args.only else available_experiments()
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")

    for name in names:
        runner = EXPERIMENTS[name]
        kwargs = {}
        if args.scale is not None:
            kwargs["scale"] = args.scale
        if args.full and "quick" in runner.__code__.co_varnames:
            kwargs["quick"] = False
        started = time.time()
        experiment = runner(**kwargs)
        elapsed = time.time() - started
        print(experiment.report())
        print(f"({name} regenerated in {elapsed:.1f}s)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
