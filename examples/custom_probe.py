"""Write a custom probe: trace checkpoint-table occupancy cycle by cycle.

The probe API (:mod:`repro.core.probes`) lets you observe a running
machine without touching the simulator: subclass ``Probe``, override
the events you care about, and attach the probe through
``repro.api.Simulation``.  Probes are pure observers — attaching them
never changes cycles or IPC.

This example instruments the paper's checkpointed machine with a probe
that (a) counts how often each checkpoint-table occupancy level is seen
and (b) records how large each checkpoint's instruction window grew by
the time the next checkpoint opened.  Run it::

    PYTHONPATH=src python examples/custom_probe.py
"""

from __future__ import annotations

from collections import Counter

from repro import api, cooo_config
from repro.analysis import format_bar_chart, format_table
from repro.core.probes import Probe
from repro.workloads import random_gather


class CheckpointOccupancyTracer(Probe):
    """Per-cycle checkpoint-table occupancy histogram + window sizes."""

    def on_attach(self, pipeline) -> None:
        self.occupancy_cycles: Counter = Counter()
        self.window_sizes = []
        self._open_checkpoint = None

    def on_cycle(self, pipeline) -> None:
        self.occupancy_cycles[pipeline.checkpoints.occupancy] += 1

    def on_checkpoint(self, pipeline, checkpoint) -> None:
        if self._open_checkpoint is not None:
            self.window_sizes.append(self._open_checkpoint.instruction_count)
        self._open_checkpoint = checkpoint


def main() -> None:
    config = cooo_config(iq_size=64, sliq_size=1024, checkpoints=8, memory_latency=500)
    trace = random_gather(elements=1200)

    tracer = CheckpointOccupancyTracer()
    result = api.Simulation(config, probes=[tracer]).run(trace)

    print(f"workload: {trace.name}  machine: {config.name}")
    print(f"ipc={result.ipc:.4f}  cycles={result.cycles}  "
          f"checkpoints created={int(result.checkpoints_created)}\n")

    total = sum(tracer.occupancy_cycles.values())
    rows = [
        {
            "checkpoints live": occupancy,
            "cycles": cycles,
            "share": f"{100 * cycles / total:.1f}%",
        }
        for occupancy, cycles in sorted(tracer.occupancy_cycles.items())
    ]
    print("cycles spent at each checkpoint-table occupancy:")
    print(format_table(rows))

    if tracer.window_sizes:
        print("\ninstructions associated per closed checkpoint window:")
        buckets = Counter(min(size // 64 * 64, 512) for size in tracer.window_sizes)
        print(
            format_bar_chart(
                {f">={bucket}" if bucket == 512 else f"{bucket}-{bucket + 63}": count
                 for bucket, count in sorted(buckets.items())}
            )
        )


if __name__ == "__main__":
    main()
