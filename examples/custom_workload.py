"""Register a custom workload and suite, then sweep machines over them.

The workload registry (:mod:`repro.workloads.registry`) makes scenarios
pluggable the same way machines are: register a generator once and it
works everywhere — ``repro simulate --workload``, ``repro sweep
--suite``, ``repro trace save``, ``api.run_many`` and the persistent
result cache — with zero engine or CLI edits.

This example builds a "zigzag" kernel (bursts of cache-friendly strided
loads alternating with cache-hostile jumps), registers it with a stride
knob, wraps three strides into a registered suite, and compares the
paper's two machines over it.  Run it::

    PYTHONPATH=src python examples/custom_workload.py
"""

from __future__ import annotations

from repro import api, cooo_config, scaled_baseline
from repro.analysis import format_table
from repro.isa import registers as regs
from repro.workloads import TraceBuilder
from repro.workloads.registry import register_suite, register_workload
from repro.workloads.scenario import stream_rng
from repro.workloads.suite import Suite, SuiteMember


@register_workload(
    "zigzag",
    description="strided bursts alternating with random far jumps",
    base_size=1000,
    knobs={"stride": 4, "burst": 16, "seed": 99},
)
def zigzag(size: int, stride: int = 4, burst: int = 16, seed: int = 99):
    """Alternating hot/cold access pattern with a loop-closing branch."""
    builder = TraceBuilder(name="zigzag")
    rng = stream_rng("zigzag", stride, burst, seed)
    index = regs.int_reg(1)
    value = regs.fp_reg(2)
    accum = regs.fp_reg(3)
    builder.int_op(index)
    builder.fp_add(accum)
    loop_pc = builder.pc
    hot_base, cold_base = 0x1000_0000, 0x5000_0000
    iterations = max(4, size // 4)
    for i in range(iterations):
        builder.set_pc(loop_pc)
        if (i // burst) % 2 == 0:  # hot burst: strided, cache friendly
            addr = hot_base + (i % burst) * stride * 8
        else:  # cold burst: random jumps over 32 MiB
            addr = cold_base + rng.randrange(1 << 22) * 8
        builder.load(value, addr, addr_reg=index)
        builder.fp_add(accum, accum, value)
        builder.int_op(index, index)
        builder.branch(taken=(i != iterations - 1), target=loop_pc, srcs=(index,))
    return builder.build()


@register_suite(description="zigzag at three strides: reuse vs. streaming vs. thrashing")
def zigzag_suite() -> Suite:
    return Suite(
        "zigzag-suite",
        [
            SuiteMember(f"stride{stride}", lambda n, s=stride: zigzag(n, stride=s), 2000)
            for stride in (1, 8, 64)
        ],
    )


def main() -> None:
    configs = [
        scaled_baseline(window=128, memory_latency=500),
        cooo_config(iq_size=64, sliq_size=1024, memory_latency=500),
    ]
    # The registered suite is sweepable by name — same path as the
    # built-ins, including the parallel engine and result cache.
    results = api.run_many(configs, suite="zigzag-suite", scale=0.5)

    rows = []
    for config, per_workload in results:
        row = {"machine": config.name or config.mode}
        for workload, result in per_workload.items():
            row[workload] = round(result.ipc, 4)
        row["mean_ipc"] = round(
            sum(r.ipc for r in per_workload.values()) / len(per_workload), 4
        )
        rows.append(row)
    print("zigzag-suite: IPC per member (memory latency 500)")
    print(format_table(rows))
    print(
        "\nthe same suite is now CLI-visible too:\n"
        "  python -m repro workloads            # catalog entry\n"
        "  python -m repro sweep --suite zigzag-suite --jobs 4\n"
        "  python -m repro trace save --suite zigzag-suite --out-dir traces/"
    )


if __name__ == "__main__":
    main()
