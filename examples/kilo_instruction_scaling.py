#!/usr/bin/env python3
"""Towards kilo-instruction processors: window scaling on a budget.

Section 5 of the paper argues that checkpointing plus two-level instruction
queuing (plus ephemeral registers) makes processors with thousands of
in-flight instructions affordable.  This example measures, for the whole
SPEC2000fp-like suite, how the average in-flight window and the IPC grow as
the COoO machine's cheap structures (SLIQ, checkpoints) are scaled — while
its expensive structures (issue queue, pseudo-ROB) stay fixed at 64 entries.
"""

from repro import api, cooo_config, scaled_baseline
from repro.analysis import format_table
from repro.experiments import suite_ipc, suite_metric
from repro.workloads import spec2000fp_like


def run(config, traces):
    return api.Simulation(config).run_suite(traces)


def main() -> None:
    memory_latency = 1000
    traces = spec2000fp_like(scale=0.4)
    print(f"suite: {', '.join(traces)} (memory latency {memory_latency} cycles)\n")

    rows = []
    baseline = run(scaled_baseline(window=128, memory_latency=memory_latency), traces)
    rows.append({
        "machine": "baseline-128",
        "ipc": round(suite_ipc(baseline), 3),
        "avg in-flight": round(suite_metric(baseline, lambda r: r.mean_in_flight), 0),
    })

    for sliq_size, checkpoints in ((256, 4), (512, 8), (1024, 8), (2048, 16), (4096, 32)):
        config = cooo_config(
            iq_size=64,
            sliq_size=sliq_size,
            checkpoints=checkpoints,
            memory_latency=memory_latency,
        )
        results = run(config, traces)
        rows.append({
            "machine": f"COoO iq64 sliq{sliq_size} ckpt{checkpoints}",
            "ipc": round(suite_ipc(results), 3),
            "avg in-flight": round(suite_metric(results, lambda r: r.mean_in_flight), 0),
        })

    limit = run(scaled_baseline(window=4096, memory_latency=memory_latency), traces)
    rows.append({
        "machine": "baseline-4096 (unbuildable)",
        "ipc": round(suite_ipc(limit), 3),
        "avg in-flight": round(suite_metric(limit, lambda r: r.mean_in_flight), 0),
    })

    print(format_table(rows))
    print(
        "\nThe expensive, cycle-time-critical structures stay at 64 entries; only the\n"
        "RAM-like SLIQ and the tiny checkpoint table grow, yet the machine sustains\n"
        "in-flight windows in the thousands and closes most of the gap to the\n"
        "unbuildable 4096-entry conventional design."
    )


if __name__ == "__main__":
    main()
