"""Tests for the synthetic workload generators and suites."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads import (
    INTEGER_LIKE,
    SPEC2000FP_LIKE,
    blocked_daxpy,
    branchy_integer,
    daxpy,
    fp_compute_bound,
    get_suite,
    matvec,
    mixed_int_fp,
    pointer_chase,
    random_gather,
    reduction,
    single_miss_probe,
    spec2000fp_like,
    stencil3,
    stream_triad,
)


class TestNumericalKernels:
    def test_daxpy_structure(self):
        trace = daxpy(elements=32)
        # 3 setup + 7 per element
        assert len(trace) == 3 + 7 * 32
        assert trace.count(OpClass.FP_LOAD) == 64
        assert trace.count(OpClass.FP_STORE) == 32
        assert trace.count(OpClass.BRANCH) == 32

    def test_daxpy_loop_branches_share_pc(self):
        trace = daxpy(elements=16)
        branch_pcs = {i.pc for i in trace if i.is_branch}
        assert len(branch_pcs) == 1

    def test_daxpy_last_branch_not_taken(self):
        trace = daxpy(elements=8)
        branches = [i for i in trace if i.is_branch]
        assert all(b.branch_taken for b in branches[:-1])
        assert not branches[-1].branch_taken

    def test_daxpy_is_streaming(self):
        trace = daxpy(elements=64)
        addrs = [i.mem_addr for i in trace if i.op is OpClass.FP_LOAD]
        assert len(set(addrs)) == len(addrs)  # never revisits an element

    def test_triad_uses_three_arrays(self):
        trace = stream_triad(elements=16)
        bases = {i.mem_addr & 0xF000_0000 for i in trace if i.mem_addr is not None}
        assert len(bases) == 3

    def test_reduction_is_serial(self):
        trace = reduction(elements=16)
        adds = [i for i in trace if i.op is OpClass.FP_ALU and i.srcs]
        # every accumulation reads its own destination register
        assert all(a.dest in a.srcs for a in adds)

    def test_stencil_reuses_lines(self):
        trace = stencil3(elements=64)
        loads = [i for i in trace if i.is_load]
        assert trace.unique_lines(64) < len(loads)

    def test_matvec_size(self):
        trace = matvec(rows=4, cols=8)
        assert trace.count(OpClass.BRANCH) == 4 * 8 + 4

    def test_gather_is_deterministic(self):
        assert random_gather(elements=32, seed=3).to_jsonl() == random_gather(
            elements=32, seed=3
        ).to_jsonl()

    def test_gather_seeds_differ(self):
        a = random_gather(elements=32, seed=1)
        b = random_gather(elements=32, seed=2)
        assert a.to_jsonl() != b.to_jsonl()

    def test_gather_has_large_footprint(self):
        trace = random_gather(elements=128, table_elements=1 << 20)
        assert trace.footprint_bytes() > 128 * 64 // 2

    def test_blocked_daxpy_revisits_lines(self):
        trace = blocked_daxpy(elements=64, block_elements=32, passes=2)
        loads = [i for i in trace if i.is_load]
        assert trace.unique_lines(64) < len(loads) // 2

    def test_fp_compute_has_no_memory(self):
        trace = fp_compute_bound(iterations=32)
        assert trace.load_fraction() == 0.0
        assert trace.store_fraction() == 0.0

    def test_single_miss_probe_shape(self):
        trace = single_miss_probe(dependents=5, padding=10)
        assert trace[0].is_load
        assert trace.count(OpClass.FP_ALU) == 5
        assert trace.count(OpClass.INT_ALU) == 10


class TestIntegerKernels:
    def test_pointer_chase_is_serial(self):
        trace = pointer_chase(hops=16, work_per_hop=1)
        loads = [i for i in trace if i.is_load]
        assert len(loads) == 16
        # every load's address register is its own destination (serial chain)
        assert all(l.srcs and l.srcs[0] == l.dest for l in loads)

    def test_branchy_integer_mispredictable(self):
        trace = branchy_integer(iterations=200, taken_probability=0.5, seed=1)
        inner = [i for i in trace if i.is_branch and not i.srcs == ()][0::2]
        taken = sum(1 for i in trace if i.is_branch and i.branch_taken)
        total = trace.count(OpClass.BRANCH)
        assert 0.4 < taken / total < 0.9

    def test_mixed_kernel_has_both_classes(self):
        trace = mixed_int_fp(iterations=32)
        assert trace.count(OpClass.INT_MUL) > 0
        assert trace.count(OpClass.FP_MUL) > 0


class TestNewIntegerKernels:
    def test_multi_chase_round_robins_chains(self):
        from repro.workloads import multi_pointer_chase

        trace = multi_pointer_chase(hops=12, chains=3)
        loads = [i for i in trace if i.is_load]
        assert len({l.dest for l in loads}) == 3
        # each chain is serial: a chain's load addresses its own pointer
        assert all(l.srcs == (l.dest,) for l in loads)

    def test_multi_chase_rejects_out_of_range_chains(self):
        from repro.workloads import multi_pointer_chase

        with pytest.raises(ValueError):
            multi_pointer_chase(hops=8, chains=0)
        with pytest.raises(ValueError):
            multi_pointer_chase(hops=8, chains=13)

    def test_dense_branches_density(self):
        from repro.workloads import dense_branches

        trace = dense_branches(iterations=50, branches_per_iteration=3)
        assert trace.branch_fraction() > 0.6

    def test_dense_branches_rejects_zero_branches(self):
        from repro.workloads import dense_branches

        with pytest.raises(ValueError):
            dense_branches(iterations=8, branches_per_iteration=0)


class TestSuites:
    def test_spec_suite_membership(self):
        traces = spec2000fp_like(scale=0.1)
        assert set(traces) == {
            "daxpy",
            "triad",
            "stencil3",
            "reduction",
            "gather",
            "matvec",
            "blocked",
            "fp_compute",
        }

    def test_scale_changes_size(self):
        small = spec2000fp_like(scale=0.1)
        large = spec2000fp_like(scale=0.3)
        assert all(len(large[name]) > len(small[name]) for name in small)

    def test_suite_lookup(self):
        assert get_suite("spec2000fp_like") is SPEC2000FP_LIKE
        assert get_suite("integer_like") is INTEGER_LIKE
        with pytest.raises(KeyError):
            get_suite("spec2017")

    def test_suite_names(self):
        assert SPEC2000FP_LIKE.names()[0] == "daxpy"
        assert len(INTEGER_LIKE) == 3

    def test_members_are_mostly_fp(self):
        traces = spec2000fp_like(scale=0.1)
        fp_heavy = 0
        for trace in traces.values():
            mix = trace.mix()
            fp_ops = sum(count for op, count in mix.items() if op.startswith("fp"))
            if fp_ops / len(trace) > 0.3:
                fp_heavy += 1
        assert fp_heavy >= 6

    def test_empty_suite_rejected(self):
        from repro.workloads.suite import Suite

        with pytest.raises(ValueError):
            Suite("empty", [])
