"""Tests for the composable scenario DSL (phases, mixing, RNG streams)."""

import pytest

from repro.common.errors import ConfigurationError, TraceError
from repro.workloads import daxpy, fp_compute_bound, random_gather
from repro.workloads.scenario import (
    Phase,
    Scenario,
    interleave,
    stream_rng,
    stream_seed,
)


def _compute(n, rng):
    return fp_compute_bound(iterations=max(4, n // 7))


def _memory(n, rng):
    return random_gather(elements=max(4, n // 6), seed=rng.randrange(1 << 30))


class TestStreams:
    def test_seed_is_stable(self):
        assert stream_seed("a", 1) == stream_seed("a", 1)

    def test_seed_depends_on_every_part(self):
        assert stream_seed("a", 1) != stream_seed("a", 2)
        assert stream_seed("a", 1) != stream_seed("b", 1)
        # concatenation cannot collide parts ("ab", "c") vs ("a", "bc")
        assert stream_seed("ab", "c") != stream_seed("a", "bc")

    def test_rng_streams_are_independent(self):
        first = stream_rng("x").random()
        assert first == stream_rng("x").random()
        assert first != stream_rng("y").random()


class TestPhase:
    def test_rejects_bad_weight(self):
        with pytest.raises(ConfigurationError):
            Phase("p", _compute, weight=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Phase("", _compute)


class TestScenario:
    def _scenario(self, **kwargs):
        return Scenario(
            "test-scn",
            [Phase("compute", _compute, weight=1), Phase("memory", _memory, weight=2)],
            **kwargs,
        )

    def test_needs_phases(self):
        with pytest.raises(ConfigurationError):
            Scenario("empty", [])

    def test_rejects_duplicate_phase_names(self):
        with pytest.raises(ConfigurationError):
            Scenario("dup", [Phase("p", _compute), Phase("p", _memory)])

    def test_rejects_bad_repeat(self):
        with pytest.raises(ConfigurationError):
            self._scenario(repeat=0)

    def test_build_is_deterministic(self):
        assert self._scenario().build(600).to_jsonl() == self._scenario().build(600).to_jsonl()

    def test_seed_changes_random_phases_only(self):
        base = self._scenario().build(600)
        reseeded = self._scenario(seed=1).build(600)
        assert len(base) == len(reseeded)
        assert base.to_jsonl() != reseeded.to_jsonl()

    def test_weights_split_budget(self):
        budgets = self._scenario().phase_budgets(900)
        assert budgets[1] == 2 * budgets[0]

    def test_phases_are_relabelled_in_order(self):
        trace = self._scenario().build(600)
        labels = [instr.label for instr in trace]
        assert set(labels) == {"test-scn.compute", "test-scn.memory"}
        # one contiguous run per phase
        transitions = sum(1 for a, b in zip(labels, labels[1:]) if a != b)
        assert transitions == 1

    def test_repeat_cycles_phases(self):
        trace = self._scenario(repeat=2).build(600)
        labels = [instr.label for instr in trace]
        transitions = sum(1 for a, b in zip(labels, labels[1:]) if a != b)
        assert transitions == 3  # compute|memory|compute|memory

    def test_repetitions_of_random_phases_differ(self):
        trace = self._scenario(repeat=2).build(1200)
        labels = [instr.label for instr in trace]
        # split the two memory phases and compare their gather addresses
        chunks = []
        current = None
        for instr, label in zip(trace, labels):
            if label != current:
                chunks.append([])
                current = label
            chunks[-1].append(instr)
        memory_chunks = [c for c, l in zip(chunks, ["c", "m", "c", "m"]) if l == "m"]
        addrs = [tuple(i.mem_addr for i in chunk if i.mem_addr) for chunk in memory_chunks]
        assert addrs[0] != addrs[1]

    def test_as_generator_matches_build(self):
        scenario = self._scenario()
        assert scenario.as_generator()(600).to_jsonl() == scenario.build(600).to_jsonl()

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            self._scenario().build(0)


class TestInterleave:
    def test_round_robin_alternates_blocks(self):
        a = daxpy(elements=32, name="a")
        b = fp_compute_bound(iterations=32, name="b")
        mixed = interleave([a, b], block=8, name="mix")
        assert len(mixed) == len(a) + len(b)
        labels = [instr.label for instr in mixed]
        assert labels[:8] == ["a"] * 8
        assert labels[8:16] == ["b"] * 8

    def test_preserves_per_trace_order(self):
        a = daxpy(elements=16, name="a")
        b = fp_compute_bound(iterations=16, name="b")
        mixed = interleave([a, b], block=4)
        assert [i for i in mixed if i.label == "a"] == list(a)
        assert [i for i in mixed if i.label == "b"] == list(b)

    def test_random_interleave_is_deterministic_for_fixed_rng(self):
        a = daxpy(elements=16, name="a")
        b = fp_compute_bound(iterations=16, name="b")
        first = interleave([a, b], block=4, rng=stream_rng("mix"))
        second = interleave([a, b], block=4, rng=stream_rng("mix"))
        assert first.to_jsonl() == second.to_jsonl()

    def test_rejects_empty_input(self):
        with pytest.raises(TraceError):
            interleave([])

    def test_rejects_bad_block(self):
        with pytest.raises(TraceError):
            interleave([daxpy(elements=8)], block=0)


class TestRelabel:
    def test_relabel_replaces_every_label(self):
        trace = daxpy(elements=8).relabel("renamed")
        assert {instr.label for instr in trace} == {"renamed"}

    def test_relabel_keeps_everything_else(self):
        original = daxpy(elements=8)
        relabelled = original.relabel("renamed")
        for before, after in zip(original, relabelled):
            assert before.pc == after.pc
            assert before.op == after.op
            assert before.srcs == after.srcs
            assert before.mem_addr == after.mem_addr
