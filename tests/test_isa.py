"""Tests for the ISA layer: registers, operation classes, instructions."""

import pytest

from repro.common.config import FunctionalUnitConfig
from repro.isa import registers as regs
from repro.isa.instruction import DynInst, InstState, Instruction, RetireClass, nop
from repro.isa.opcodes import (
    FUType,
    OpClass,
    execution_latency,
    is_branch,
    is_fp,
    is_load,
    is_memory,
    is_pipelined,
    is_store,
)


class TestRegisters:
    def test_int_and_fp_spaces_are_disjoint(self):
        assert set(regs.all_int_regs()).isdisjoint(regs.all_fp_regs())

    def test_total_count(self):
        assert regs.NUM_LOGICAL_REGS == 64
        assert len(regs.all_int_regs()) == 32
        assert len(regs.all_fp_regs()) == 32

    def test_fp_reg_offsets(self):
        assert regs.fp_reg(0) == 32
        assert regs.fp_reg(31) == 63

    def test_is_fp(self):
        assert not regs.is_fp(regs.int_reg(5))
        assert regs.is_fp(regs.fp_reg(5))

    def test_names_roundtrip(self):
        for reg in (regs.int_reg(0), regs.int_reg(31), regs.fp_reg(0), regs.fp_reg(17)):
            assert regs.parse_reg(regs.reg_name(reg)) == reg

    def test_reg_name_format(self):
        assert regs.reg_name(regs.int_reg(3)) == "r3"
        assert regs.reg_name(regs.fp_reg(3)) == "f3"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            regs.int_reg(32)
        with pytest.raises(ValueError):
            regs.fp_reg(-1)
        with pytest.raises(ValueError):
            regs.reg_name(64)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            regs.parse_reg("x7")

    def test_validate_regs(self):
        regs.validate_regs([0, 63])
        with pytest.raises(ValueError):
            regs.validate_regs([64])


class TestOpClassification:
    def test_loads(self):
        assert is_load(OpClass.LOAD)
        assert is_load(OpClass.FP_LOAD)
        assert not is_load(OpClass.STORE)

    def test_stores(self):
        assert is_store(OpClass.STORE)
        assert is_store(OpClass.FP_STORE)
        assert not is_store(OpClass.FP_LOAD)

    def test_memory(self):
        assert is_memory(OpClass.LOAD)
        assert is_memory(OpClass.FP_STORE)
        assert not is_memory(OpClass.FP_MUL)

    def test_branch(self):
        assert is_branch(OpClass.BRANCH)
        assert not is_branch(OpClass.INT_ALU)

    def test_fp_steering(self):
        assert is_fp(OpClass.FP_ALU)
        assert is_fp(OpClass.FP_LOAD)
        assert not is_fp(OpClass.LOAD)
        assert not is_fp(OpClass.BRANCH)

    def test_latencies_match_table1(self):
        fu = FunctionalUnitConfig()
        assert execution_latency(OpClass.INT_ALU, fu) == 1
        assert execution_latency(OpClass.INT_MUL, fu) == 3
        assert execution_latency(OpClass.INT_DIV, fu) == 20
        assert execution_latency(OpClass.FP_ALU, fu) == 2
        assert execution_latency(OpClass.BRANCH, fu) == 1

    def test_divides_are_unpipelined(self):
        assert not is_pipelined(OpClass.INT_DIV)
        assert not is_pipelined(OpClass.FP_DIV)
        assert is_pipelined(OpClass.FP_MUL)


class TestInstruction:
    def test_simple_alu(self):
        instr = Instruction(pc=0x1000, op=OpClass.INT_ALU, dest=1, srcs=(2, 3))
        assert instr.writes_register
        assert not instr.is_memory

    def test_memory_instruction_requires_address(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.LOAD, dest=1)

    def test_store_must_not_write_register(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.STORE, dest=1, srcs=(2,), mem_addr=0x10)

    def test_taken_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.BRANCH, branch_taken=True)

    def test_not_taken_branch_without_target_ok(self):
        instr = Instruction(pc=0, op=OpClass.BRANCH, branch_taken=False)
        assert instr.is_branch

    def test_invalid_register_rejected(self):
        with pytest.raises(ValueError):
            Instruction(pc=0, op=OpClass.INT_ALU, dest=99)

    def test_describe_contains_operands(self):
        instr = Instruction(pc=0, op=OpClass.FP_ALU, dest=regs.fp_reg(1), srcs=(regs.fp_reg(2),))
        text = instr.describe()
        assert "f1" in text and "f2" in text

    def test_nop_helper(self):
        assert nop().op is OpClass.NOP


class TestDynInst:
    def _dyn(self, **kwargs):
        instr = Instruction(pc=0x4, op=OpClass.FP_ALU, dest=regs.fp_reg(1), srcs=(regs.fp_reg(2),))
        return DynInst(seq=7, trace_index=3, instr=instr, **kwargs)

    def test_initial_state(self):
        inst = self._dyn()
        assert inst.state is InstState.FETCHED
        assert not inst.completed
        assert not inst.squashed

    def test_property_passthrough(self):
        inst = self._dyn()
        assert inst.op is OpClass.FP_ALU
        assert inst.dest == regs.fp_reg(1)
        assert inst.srcs == (regs.fp_reg(2),)
        assert not inst.is_memory

    def test_mark_squashed(self):
        inst = self._dyn()
        inst.mark_squashed()
        assert inst.squashed
        # idempotent
        inst.mark_squashed()
        assert inst.state is InstState.SQUASHED

    def test_cannot_squash_committed(self):
        inst = self._dyn()
        inst.state = InstState.COMMITTED
        with pytest.raises(ValueError):
            inst.mark_squashed()

    def test_identity_semantics(self):
        first = self._dyn()
        second = self._dyn()
        assert first != second
        assert len({first, second}) == 2

    def test_retire_classes_cover_figure12(self):
        names = {rc.value for rc in RetireClass}
        assert names == {
            "moved",
            "finished",
            "short_latency",
            "finished_load",
            "long_latency_load",
            "store",
        }
