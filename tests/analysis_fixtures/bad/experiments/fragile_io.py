"""Fixture: fragile failure handling in a sweep-state module.

Fires RPR601 (swallowed-exception) and RPR602 (non-atomic-write).
"""

import json


def run_cells(cells):
    results = []
    for cell in cells:
        try:
            results.append(cell.simulate())
        except Exception:  # RPR601: every failure vanishes silently
            pass
    return results


def persist(path, payload):
    # RPR602: a crash mid-dump leaves a torn JSON file at the final path.
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
