# Violates RPR105 (ambient-env): environment reads in a result-producing
# package.
import os


def debug_level():
    return int(os.environ.get("REPRO_DEBUG", "0"))


def trace_dir():
    return os.getenv("REPRO_TRACE_DIR", "/tmp")
