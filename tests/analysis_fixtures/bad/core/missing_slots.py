# Violates RPR301 (missing-slots) and RPR302 (attr-outside-init).


class HotPathThing:
    def __init__(self, capacity):
        self.capacity = capacity
        self.occupancy = 0

    def issue(self):
        # RPR302: first assignment of a brand-new attribute outside the
        # initializer.
        self.issued_this_cycle = 1
