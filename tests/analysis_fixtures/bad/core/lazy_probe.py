# Violates RPR401 (probe-skip-aware): overrides on_cycle without
# on_idle_cycles, silently forcing the per-cycle fallback path.


class Probe:
    __slots__ = ()


class CycleCounterProbe(Probe):
    __slots__ = ("cycles",)

    def __init__(self):
        self.cycles = 0

    def on_cycle(self, pipeline, cycle):
        self.cycles += 1
