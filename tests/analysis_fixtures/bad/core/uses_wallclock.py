# Violates RPR102 (wall-clock): time reads inside a result-producing
# package (core/).
import time
from datetime import datetime


class CycleTimer:
    __slots__ = ("started",)

    def __init__(self):
        self.started = time.time()

    def elapsed(self):
        return time.perf_counter() - self.started

    def stamp(self):
        return datetime.now()
