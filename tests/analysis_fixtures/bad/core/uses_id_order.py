# Violates RPR103 (id-ordering): heap entries tie-broken by object id.
import heapq


class ReadyPool:
    __slots__ = ("_heap",)

    def __init__(self):
        self._heap = []

    def push(self, seq, inst):
        heapq.heappush(self._heap, (seq, id(inst), inst))
