# Violates RPR104 (set-order): materializing ordered views of hash sets.


class Residents:
    __slots__ = ("_members", "_waiting")

    def __init__(self):
        self._members = set()
        self._waiting = set()

    def snapshot(self):
        return list(self._members)

    def waiting(self):
        return [inst for inst in self._waiting if inst.ready]
