# Violates RPR201 (cache-key-purity): a dataclass whose hand-written
# to_dict omits a field, so the cache key cannot see it change.
from dataclasses import dataclass


@dataclass(frozen=True)
class PlanWithHole:
    period: int
    window: int
    warmup: int
    seed: int

    def to_dict(self):
        # 'seed' is missing: changing it would not change the cache key.
        return {"period": self.period, "window": self.window, "warmup": self.warmup}
