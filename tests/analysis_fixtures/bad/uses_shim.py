# Violates RPR501 (deprecated-shim): internal code importing the legacy
# entry points instead of going through repro.api.
from core.processor import Processor
from core.pipeline import build_pipeline


def run(trace):
    return Processor(build_pipeline(trace)).run()
