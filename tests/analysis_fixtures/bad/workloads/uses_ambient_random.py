# Violates RPR101 (ambient-random): module-level random calls and a
# bare-function import from the random module.
import random
from random import randint


def jitter_delays(n):
    random.seed(1234)
    return [random.random() for _ in range(n)]


def pick_stride():
    return randint(1, 8)
