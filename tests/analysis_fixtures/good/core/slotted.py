# Clean counterpart to bad/core/missing_slots.py and lazy_probe.py:
# slotted classes, attributes declared in the initializer, a skip-aware
# probe, and the exemptions (exceptions, dataclass slots).
from dataclasses import dataclass


class HotPathThing:
    __slots__ = ("capacity", "occupancy", "issued_this_cycle")

    def __init__(self, capacity):
        self.capacity = capacity
        self.occupancy = 0
        self.issued_this_cycle = 0

    def issue(self):
        self.issued_this_cycle = 1

    def reset(self):
        # Re-assigning initializer-declared attributes is fine.
        self.occupancy = 0
        self.issued_this_cycle = 0


@dataclass(frozen=True, slots=True)
class Record:
    seq: int
    payload: int


class QueueOverflowError(Exception):
    """Exception classes are exempt from the slots rule."""


class Probe:
    __slots__ = ()


class CycleCounterProbe(Probe):
    __slots__ = ("cycles",)

    def __init__(self):
        self.cycles = 0

    def on_cycle(self, pipeline, cycle):
        self.cycles += 1

    def on_idle_cycles(self, pipeline, start, span):
        self.cycles += span
