# Clean counterparts to the bad/core determinism fixtures: monotonic
# tiebreaks, sorted materialization, config-driven knobs.
import heapq
from itertools import count


class ReadyPool:
    __slots__ = ("_heap", "_tick")

    def __init__(self):
        self._heap = []
        self._tick = count()

    def push(self, seq, inst):
        heapq.heappush(self._heap, (seq, next(self._tick), inst))


class Residents:
    __slots__ = ("_members", "_waiting")

    def __init__(self):
        self._members = set()
        self._waiting = set()

    def snapshot(self):
        return sorted(self._members, key=lambda inst: inst.seq)

    def waiting(self):
        return sorted(
            (inst for inst in self._waiting if inst.ready),
            key=lambda inst: inst.seq,
        )

    def total(self):
        # Commutative folds over sets are order-insensitive and fine.
        return sum(inst.weight for inst in self._members)


def debug_level(config):
    return config.debug_level
