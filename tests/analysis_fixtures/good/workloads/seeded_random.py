# Clean counterpart to bad/workloads/uses_ambient_random.py: a private,
# explicitly seeded generator stream.
import random


def jitter_delays(n, seed):
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


def pick_stride(seed):
    return random.Random(seed).randint(1, 8)
