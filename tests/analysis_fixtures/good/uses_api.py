# Clean counterpart to bad/uses_shim.py: goes through the supported
# repro.api surface.
from repro.api import run


def simulate_trace(trace):
    return run(trace)
