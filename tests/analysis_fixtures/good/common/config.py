# Clean counterpart to bad/common/config.py: every field reaches the
# serialization (one literal dict covering all fields, one asdict form).
import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class CompletePlan:
    period: int
    window: int
    warmup: int
    seed: int

    def to_dict(self):
        return {
            "period": self.period,
            "window": self.window,
            "warmup": self.warmup,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class AsdictPlan:
    period: int
    window: int
    extras: dict

    def to_dict(self):
        # asdict picks up new fields automatically; immune by design.
        return dataclasses.asdict(self)
