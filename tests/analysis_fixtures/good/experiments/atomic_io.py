"""Fixture: the sanctioned counterparts of the RPR6xx anti-patterns."""

import json
import os


def run_cells(cells, journal):
    results = []
    for cell in cells:
        try:
            results.append(cell.simulate())
        except ValueError as exc:  # narrow, and the failure is recorded
            journal.append({"cell": cell.name, "error": str(exc)})
    return results


def persist(path, payload):
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
