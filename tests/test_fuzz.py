"""Tests for the coverage-guided scenario fuzzer (``repro.fuzz``)."""

import json

import pytest

import repro.api as api
from repro.cli import main
from repro.common.errors import ConfigurationError, SimulationError, TraceError
from repro.core.registry_machines import machine_names
from repro.fuzz import (
    CaseGenerator,
    CaseSpec,
    CorpusCase,
    CoverageMap,
    MIN_CASE_SIZE,
    MachineRun,
    MachineTuning,
    PhaseSpec,
    corpus_paths,
    load_case,
    occupancy_band,
    replay_case,
    run_fuzz,
    save_case,
    shrink,
)
from repro.fuzz.oracles import oracle_kernel_equivalence, oracle_no_deadlock
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace

# One machine, one oracle: enough to exercise the campaign loop without
# paying for the full differential matrix on every test run.
FAST = {"machines": ["baseline"], "oracles": ["kernel-equivalence"]}


def small_case(name="unit", **changes):
    base = dict(
        name=name,
        kind="single",
        phases=(PhaseSpec("daxpy"),),
        size=64,
        tuning=MachineTuning(memory_latency=100, deadlock_cycles=50_000),
    )
    base.update(changes)
    return CaseSpec(**base)


class TestCaseSpec:
    def test_round_trips_through_dict(self):
        case = CaseSpec(
            name="rt",
            kind="interleave",
            phases=(
                PhaseSpec("dense_branches", weight=8.0, knobs={"taken_bias": 0.5}),
                PhaseSpec("blocked", weight=2.0),
            ),
            size=320,
            seed=17,
            block=16,
            shuffle=True,
            tuning=MachineTuning(memory_latency=300, iq_size=16),
        )
        assert CaseSpec.from_dict(case.to_dict()) == case

    def test_build_trace_is_deterministic(self):
        case = small_case(
            kind="scenario",
            phases=(PhaseSpec("daxpy"), PhaseSpec("pointer_chase")),
            size=128,
            seed=3,
        )
        first = [inst.to_record() for inst in case.build_trace()]
        second = [inst.to_record() for inst in case.build_trace()]
        assert first == second

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            small_case(kind="mystery")

    def test_rejects_tiny_size(self):
        with pytest.raises(ConfigurationError):
            small_case(size=MIN_CASE_SIZE - 1)

    def test_single_kind_takes_one_phase(self):
        with pytest.raises(ConfigurationError):
            small_case(phases=(PhaseSpec("daxpy"), PhaseSpec("triad")))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ConfigurationError):
            PhaseSpec("daxpy", weight=0)

    def test_stale_knob_fails_at_build_time(self):
        case = small_case(phases=(PhaseSpec("daxpy", knobs={"no_such_knob": 1}),))
        with pytest.raises((ConfigurationError, KeyError, TypeError, ValueError)):
            case.build_trace()


class TestGenerator:
    def test_same_seed_same_cases(self):
        first = [CaseGenerator(5).generate(i) for i in range(4)]
        second = [CaseGenerator(5).generate(i) for i in range(4)]
        assert first == second

    def test_different_seeds_diverge(self):
        a = [CaseGenerator(5).generate(i) for i in range(4)]
        b = [CaseGenerator(6).generate(i) for i in range(4)]
        assert a != b

    def test_names_pin_seed_and_index(self):
        case = CaseGenerator(9).generate(2)
        assert case.name == "fuzz-s9-c2"

    def test_generated_cases_build(self):
        gen = CaseGenerator(1)
        for i in range(3):
            case = gen.generate(i)
            trace = case.build_trace()
            assert len(trace) > 0


class TestCoverage:
    def test_occupancy_bands_are_ordered_labels(self):
        bands = {occupancy_band(v) for v in (0.5, 10, 70, 200, 600, 3000)}
        assert len(bands) > 2

    def test_map_novelty(self):
        cov = CoverageMap()
        assert cov.add("baseline|none|inflight:<16") is True
        assert cov.add("baseline|none|inflight:<16") is False
        assert cov.count("baseline|none|inflight:<16") == 2
        assert len(cov) == 1

    def test_digest_depends_only_on_signatures(self):
        a, b = CoverageMap(), CoverageMap()
        a.add("x|y|z")
        a.add("p|q|r")
        b.add("p|q|r")
        b.add("x|y|z")
        assert a.digest() == b.digest()


class TestShrinker:
    def test_shrinks_to_small_failing_case(self):
        start = CaseSpec(
            name="shrink-me",
            kind="interleave",
            phases=(
                PhaseSpec("dense_branches", weight=4.0),
                PhaseSpec("blocked", weight=2.0),
                PhaseSpec("daxpy", weight=1.0),
            ),
            size=960,
            seed=11,
            shuffle=True,
            tuning=MachineTuning(memory_latency=300),
        )

        def fails(case):
            return any(p.workload == "dense_branches" for p in case.phases)

        small, attempts = shrink(start, fails)
        assert fails(small)
        assert small.size <= start.size
        assert len(small.phases) == 1
        assert small.phases[0].workload == "dense_branches"
        assert attempts > 0

    def test_respects_budget(self):
        start = small_case(size=640)
        calls = []

        def fails(case):
            calls.append(case)
            return True

        shrink(start, fails, budget=5)
        assert len(calls) <= 5


class TestDifferentialEdgeCases:
    """Degenerate inputs through the kernel-equivalence oracle (all machines)."""

    def test_zero_length_trace_is_rejected_at_construction(self):
        with pytest.raises(TraceError):
            Trace([], name="empty")

    @pytest.mark.parametrize("machine", machine_names())
    def test_single_instruction_trace(self, machine):
        trace = Trace(
            [Instruction(pc=0x100, op=OpClass.INT_ALU, dest=1)], name="one-inst"
        )
        run = MachineRun(small_case("edge-one"), trace, machine)
        verdict = oracle_kernel_equivalence(run)
        assert verdict.ok, verdict.details

    @pytest.mark.parametrize("machine", machine_names())
    def test_all_weight_on_one_kernel(self, machine):
        # A scenario whose weight mass sits entirely on one phase must
        # still build and agree across kernels: the starved phase is
        # clamped to the DSL's minimum phase size, not dropped.
        case = CaseSpec(
            name="edge-lopsided",
            kind="scenario",
            phases=(
                PhaseSpec("pointer_chase", weight=1000.0),
                PhaseSpec("daxpy", weight=0.001),
            ),
            size=160,
            seed=2,
            tuning=MachineTuning(memory_latency=100),
        )
        trace = case.build_trace()
        labels = {inst.label for inst in trace}
        assert any("pointer_chase" in label for label in labels)
        run = MachineRun(case, trace, machine)
        verdict = oracle_kernel_equivalence(run)
        assert verdict.ok, verdict.details

    @pytest.mark.parametrize("machine", ["baseline", "cooo"])
    def test_max_cycles_mid_drain(self, machine):
        # Cutting the run off mid-drain must fail identically on the
        # event-driven and per-cycle paths: same exception type, same
        # committed count in the message.
        case = small_case("edge-cut", size=256)
        trace = case.build_trace()
        config = case.build_config(machine)
        full = api.run(config, trace)
        cut = max(2, full.cycles // 2)
        with pytest.raises(SimulationError) as fast:
            api.run(config, trace, max_cycles=cut)
        with pytest.raises(SimulationError) as slow:
            api.run(config, trace, max_cycles=cut, force_per_cycle=True)
        assert str(fast.value) == str(slow.value)


class TestCorpusIO:
    def entry(self):
        return CorpusCase(
            case=small_case("corpus-unit"),
            oracles=("kernel-equivalence",),
            machines=("baseline",),
            note="unit-test entry",
            coverage=("baseline|none|inflight:<16",),
        )

    def test_save_load_round_trip(self, tmp_path):
        path = save_case(self.entry(), tmp_path)
        assert path.name == "corpus-unit.case.json"
        loaded = load_case(path)
        assert loaded == self.entry()

    def test_corpus_paths_sorted(self, tmp_path):
        save_case(self.entry(), tmp_path)
        other = CorpusCase(
            case=small_case("another"), oracles=("no-deadlock",), machines=("cooo",)
        )
        save_case(other, tmp_path)
        names = [p.name for p in corpus_paths(tmp_path)]
        assert names == sorted(names) and len(names) == 2

    def test_bad_schema_rejected(self, tmp_path):
        data = self.entry().to_dict()
        data["schema"] = 999
        path = tmp_path / "bad.case.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_case(path)

    def test_missing_machines_rejected(self, tmp_path):
        data = self.entry().to_dict()
        data["machines"] = []
        path = tmp_path / "bad.case.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_case(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.case.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_case(path)

    def test_replay_case_runs_contract(self):
        verdicts = replay_case(self.entry())
        assert verdicts and all(v.ok for v in verdicts)


class TestCampaign:
    def test_deterministic_per_seed(self):
        first = run_fuzz(2, seed=9, **FAST)
        second = run_fuzz(2, seed=9, **FAST)
        assert first.coverage.digest() == second.coverage.digest()
        assert first.coverage.to_dict() == second.coverage.to_dict()
        assert first.verdicts == second.verdicts
        assert [case.name for case, _sigs in first.novel] == [
            case.name for case, _sigs in second.novel
        ]

    def test_clean_campaign_reports_ok(self):
        report = run_fuzz(2, seed=9, **FAST)
        assert report.ok
        assert not report.failures
        assert report.verdicts

    def test_failures_written_to_corpus(self, tmp_path, monkeypatch):
        # Force a failure by making an oracle reject everything, and
        # check the campaign shrinks and serializes it.
        import repro.fuzz.runner as runner_mod

        def always_fails(run):
            from repro.fuzz.oracles import OracleVerdict

            return OracleVerdict("kernel-equivalence", run.machine, False, "forced")

        monkeypatch.setitem(
            runner_mod.ORACLES, "kernel-equivalence", (always_fails, "machine")
        )
        report = run_fuzz(
            1,
            seed=9,
            corpus_dir=tmp_path,
            shrink_failures=False,
            **FAST,
        )
        assert not report.ok
        assert len(report.failures) == 1
        saved = corpus_paths(tmp_path)
        assert len(saved) == 1
        entry = load_case(saved[0])
        assert entry.machines == ("baseline",)

    def test_campaign_writes_no_cache_files(self, tmp_path, monkeypatch):
        # The fuzzer must never touch the persistent sweep cache: its
        # traces are synthetic and its configs are mutated per-case, so a
        # poisoned entry would silently corrupt later sweeps.
        monkeypatch.chdir(tmp_path)
        report = run_fuzz(1, seed=9, **FAST)
        assert report.ok
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_run_many_use_cache_false_bypasses_cache(self, tmp_path):
        from repro.experiments.sweep import ResultCache

        cache = ResultCache(tmp_path / "cache")
        config = MachineTuning().build_config("baseline")
        api.run_many(
            [config],
            suite="pointer-chase",
            scale=0.05,
            workloads=["chase_cold"],
            cache=cache,
            use_cache=False,
            name="fuzz-guard-test",
        )
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert cache.stores == 0


class TestFuzzCli:
    def test_smoke_run(self, capsys):
        code = main(
            ["fuzz", "--cases", "1", "--seed", "0", "--machines", "baseline",
             "--oracles", "kernel-equivalence", "--quiet"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz seed=0" in out

    def test_json_report(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        code = main(
            ["fuzz", "--cases", "1", "--seed", "0", "--machines", "baseline",
             "--oracles", "kernel-equivalence", "--quiet", "--json", str(path)]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["seed"] == 0
        assert data["cases"] == 1

    def test_replay_missing_directory(self, capsys, tmp_path):
        code = main(["fuzz", "--replay", str(tmp_path / "nope"), "--quiet"])
        assert code == 2
        assert "corpus directory not found" in capsys.readouterr().err

    def test_rejects_unknown_machine(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--machines", "warp-drive"])

    def test_rejects_unknown_oracle(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "--oracles", "crystal-ball"])
