"""Tests for the parallel sweep engine and its persistent result cache."""

import json

import pytest

from repro.common.config import ProcessorConfig, cooo_config, scaled_baseline
from repro.core.result import SimulationResult
from repro.experiments import run_figure09
from repro.experiments.sweep import (
    ResultCache,
    SweepEngine,
    SweepSpec,
    cell_cache_key,
    ensure_engine,
)

#: Tiny scale and a two-workload filter keep every test fast.
SCALE = 0.1
WORKLOADS = ("daxpy", "reduction")


def small_spec(name="test-sweep", scale=SCALE, workloads=WORKLOADS):
    configs = [
        scaled_baseline(window=64, memory_latency=100),
        cooo_config(iq_size=32, sliq_size=512, memory_latency=100),
    ]
    return SweepSpec(name, configs, scale=scale, workloads=workloads)


def rows_of(outcome):
    return [result.summary_row() for result in outcome.results]


class TestConfigSerialization:
    def test_roundtrip_preserves_every_field(self):
        config = cooo_config(iq_size=32, sliq_size=512, checkpoints=4, memory_latency=500)
        rebuilt = ProcessorConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.stable_hash() == config.stable_hash()

    def test_roundtrip_survives_json(self):
        config = scaled_baseline(window=256, memory_latency=100, perfect_l2=True)
        rebuilt = ProcessorConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert rebuilt == config

    def test_hash_distinguishes_parameters(self):
        base = cooo_config(iq_size=32, sliq_size=512)
        assert base.stable_hash() != cooo_config(iq_size=64, sliq_size=512).stable_hash()
        assert base.stable_hash() == cooo_config(iq_size=32, sliq_size=512).stable_hash()

    def test_config_is_hashable(self):
        a = scaled_baseline(window=128)
        b = scaled_baseline(window=128)
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert {a: "x"}[b] == "x"


class TestResultSerialization:
    def test_roundtrip_through_json(self):
        from repro.api import run as simulate
        from repro.workloads import numerical

        result = simulate(
            scaled_baseline(window=64, memory_latency=100),
            numerical.daxpy(elements=50),
        )
        rebuilt = SimulationResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.summary_row() == result.summary_row()
        assert rebuilt.ipc == result.ipc
        assert rebuilt.cycles == result.cycles


class TestSpec:
    def test_cells_are_config_major_and_deterministic(self):
        spec = small_spec()
        cells = spec.cells()
        assert len(cells) == len(spec) == 4
        assert [c.index for c in cells] == [0, 1, 2, 3]
        assert [c.workload for c in cells] == ["daxpy", "reduction", "daxpy", "reduction"]
        assert cells[0].config is spec.configs[0]
        assert cells[2].config is spec.configs[1]

    def test_unknown_workload_rejected(self):
        spec = small_spec(workloads=("daxpy", "nope"))
        with pytest.raises(KeyError):
            spec.cells()

    def test_default_workloads_are_the_whole_suite(self):
        spec = small_spec(workloads=None)
        assert len(spec.workload_names()) == 8


class TestEngineExecution:
    def test_serial_outcome_orders_and_groups(self):
        spec = small_spec()
        outcome = SweepEngine(jobs=1).run(spec)
        assert len(outcome.results) == 4
        assert outcome.simulated == 4 and outcome.cached == 0
        per_config = outcome.config_results(spec.configs[1])
        assert set(per_config) == set(WORKLOADS)
        assert all(r.ipc > 0 for r in outcome.results)

    def test_parallel_matches_serial(self):
        spec = small_spec()
        serial = SweepEngine(jobs=1).run(spec)
        parallel = SweepEngine(jobs=2).run(small_spec())
        assert rows_of(serial) == rows_of(parallel)
        assert [r.stats for r in serial.results] == [r.stats for r in parallel.results]

    def test_unknown_config_lookup_rejected(self):
        outcome = SweepEngine().run(small_spec())
        with pytest.raises(KeyError):
            outcome.config_results(scaled_baseline(window=4096))

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepEngine(jobs=0)

    def test_ensure_engine_defaults_to_serial_uncached(self):
        engine = ensure_engine(None)
        assert engine.jobs == 1 and engine.cache is None
        assert ensure_engine(engine) is engine

    def test_progress_callback_sees_every_cell(self):
        lines = []
        SweepEngine(jobs=1, progress=lines.append).run(small_spec())
        assert len(lines) == 4
        assert all("simulated" in line for line in lines)


class TestResultCache:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = SweepEngine(jobs=1, cache=cache).run(small_spec())
        assert first.simulated == 4 and first.cached == 0
        warm_cache = ResultCache(tmp_path)
        second = SweepEngine(jobs=1, cache=warm_cache).run(small_spec())
        assert second.simulated == 0 and second.cached == 4
        assert warm_cache.hits == 4
        assert rows_of(first) == rows_of(second)

    def test_parallel_warm_cache(self, tmp_path):
        SweepEngine(jobs=2, cache=ResultCache(tmp_path)).run(small_spec())
        second = SweepEngine(jobs=2, cache=ResultCache(tmp_path)).run(small_spec())
        assert second.simulated == 0 and second.cached == 4

    def test_config_change_invalidates(self, tmp_path):
        SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        changed = SweepSpec(
            "test-sweep",
            [
                scaled_baseline(window=64, memory_latency=100),
                cooo_config(iq_size=64, sliq_size=512, memory_latency=100),  # iq changed
            ],
            scale=SCALE,
            workloads=WORKLOADS,
        )
        outcome = SweepEngine(cache=ResultCache(tmp_path)).run(changed)
        assert outcome.cached == 2 and outcome.simulated == 2

    def test_scale_change_invalidates(self, tmp_path):
        SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        outcome = SweepEngine(cache=ResultCache(tmp_path)).run(small_spec(scale=0.12))
        assert outcome.cached == 0 and outcome.simulated == 4

    def test_simulator_version_in_key(self):
        config = scaled_baseline(window=64)
        key_now = cell_cache_key(config, "spec2000fp_like", "daxpy", SCALE)
        key_other = cell_cache_key(
            config, "spec2000fp_like", "daxpy", SCALE, simulator_version="0.0.0"
        )
        assert key_now != key_other

    def test_version_bump_invalidates_end_to_end(self, tmp_path, monkeypatch):
        """Entries written at vN are misses after bumping repro.__version__.

        The key builder and the store stamp must read the version at call
        time (not bind it at import), or a bump in a live process would
        keep serving stale results.
        """
        import repro

        SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        monkeypatch.setattr(repro, "__version__", repro.__version__ + ".post1")
        cache = ResultCache(tmp_path)
        outcome = SweepEngine(cache=cache).run(small_spec())
        assert outcome.cached == 0 and outcome.simulated == 4
        assert cache.hits == 0
        # The re-simulated cells were stored under vN+1 keys: a second
        # run at the bumped version is fully warm again.
        warm = SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        assert warm.simulated == 0 and warm.cached == 4

    def test_corrupt_entry_recovered(self, tmp_path):
        cache = ResultCache(tmp_path)
        baseline = SweepEngine(cache=cache).run(small_spec())
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == 4
        entries[0].write_text("{ this is not json")
        entries[1].write_text(json.dumps({"key": "wrong-key", "result": {}}))
        recovery_cache = ResultCache(tmp_path)
        outcome = SweepEngine(cache=recovery_cache).run(small_spec())
        assert outcome.cached == 2 and outcome.simulated == 2
        assert recovery_cache.corrupt == 2
        assert rows_of(outcome) == rows_of(baseline)
        # The corrupt entries were rewritten: a third run is fully warm.
        third = SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        assert third.simulated == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(cache=cache).run(small_spec())
        assert cache.clear() == 4
        assert list(tmp_path.glob("*.json")) == []


class TestFigureIntegration:
    kwargs = dict(scale=SCALE, grid=((32, 512),), workloads=WORKLOADS)

    def test_figure09_parallel_identical_to_serial(self):
        serial = run_figure09(engine=SweepEngine(jobs=1), **self.kwargs)
        parallel = run_figure09(engine=SweepEngine(jobs=2), **self.kwargs)
        assert serial.rows == parallel.rows
        assert serial.per_workload == parallel.per_workload

    def test_figure09_warm_cache_runs_zero_simulations(self, tmp_path):
        cold = SweepEngine(jobs=1, cache=ResultCache(tmp_path))
        first = run_figure09(engine=cold, **self.kwargs)
        assert cold.total_simulated > 0
        warm = SweepEngine(jobs=1, cache=ResultCache(tmp_path))
        second = run_figure09(engine=warm, **self.kwargs)
        assert warm.total_simulated == 0
        assert warm.total_cached == cold.total_simulated
        assert first.rows == second.rows

    def test_default_engine_keeps_seed_behavior(self):
        # No engine argument: serial, uncached, same rows as an explicit engine.
        assert run_figure09(**self.kwargs).rows == run_figure09(
            engine=SweepEngine(), **self.kwargs
        ).rows


class TestSweepCLI:
    def test_sweep_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "figure07", "--scale", "0.08", "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "figure07" in captured.out
        assert "swept 1 experiment(s)" in captured.out
        assert "simulated" in captured.out

    def test_sweep_all_cached_second_run(self, tmp_path, capsys):
        from repro.cli import main

        args = ["sweep", "figure07", "--scale", "0.08", "--quiet",
                "--cache-dir", str(tmp_path / "cache")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "0 cell(s) simulated, 8 from cache" in capsys.readouterr().out

    def test_sweep_rejects_unknown(self, capsys):
        from repro.cli import main

        assert main(["sweep", "figure99", "--no-cache"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_experiment_no_cache_flag(self, capsys):
        from repro.cli import main

        code = main(["experiment", "figure07", "--scale", "0.08", "--no-cache"])
        assert code == 0
        assert "figure07" in capsys.readouterr().out


class TestCacheKeyStability:
    """Frozen-hash regression guard for the persistent cache.

    These literals are the cache keys produced when the workload registry
    landed; if either changes, every user's warm sweep cache is silently
    invalidated.  Deliberate invalidation must come from bumping
    ``repro.__version__`` (or the cache schema), not from refactors.
    (Re-pinned at 1.1.0, when sampled warm-up became purely functional.)
    """

    def test_default_suite_keys_are_frozen(self):
        from repro.common.config import cooo_config, scaled_baseline

        assert cell_cache_key(
            scaled_baseline(window=128), "spec2000fp_like", "daxpy", 0.6
        ) == "bae8b0fd9e6fbb7b7b9389b33b213248dbcf6b69dcc8720b41635ca1930213b0"
        assert cell_cache_key(
            cooo_config(), "spec2000fp_like", "gather", 0.6
        ) == "68a9d69c06c37a496aab6379e9f32894219fa7195db7220d5b2be62f94db0044"

    def test_default_suite_traces_are_frozen(self):
        import hashlib

        from repro.workloads.suite import spec2000fp_like

        traces = spec2000fp_like(scale=0.6)
        blob = "\n".join(trace.to_jsonl() for trace in traces.values())
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        assert digest == "06396398d66aee5ea92979d3606bff1913063f01fe56b847c5c88c92c4168e58"


class TestRegisteredSuiteSweeps:
    """The three scenario suites drop into the engine with zero edits."""

    @pytest.mark.parametrize("suite", ["pointer-chase", "branch-storm", "server-mix"])
    def test_spec_resolves_registered_suite(self, suite):
        spec = SweepSpec("s", [cooo_config(iq_size=32, sliq_size=512, memory_latency=100)], scale=0.05, suite=suite)
        assert len(spec.workload_names()) >= 3
        assert len(spec) == len(spec.workload_names())

    def test_run_many_over_new_suite(self):
        from repro.api import run_many

        results = run_many([cooo_config(iq_size=32, sliq_size=512, memory_latency=100)], suite="branch-storm", scale=0.05)
        assert len(results) == 1
        _, per_workload = results[0]
        assert set(per_workload) == {"storm_even", "storm_biased", "storm_dense"}
        assert all(result.ipc > 0 for result in per_workload.values())

    def test_engine_caches_new_suite(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = SweepSpec("s", [cooo_config(iq_size=32, sliq_size=512, memory_latency=100)], scale=0.05, suite="pointer-chase")
        engine = SweepEngine(jobs=1, cache=cache)
        cold = engine.run(spec)
        warm = engine.run(spec)
        assert cold.simulated == len(spec)
        assert warm.cached == len(spec)
        assert [r.to_dict() for r in warm.results] == [r.to_dict() for r in cold.results]

    def test_unknown_suite_error_lists_names(self):
        spec = SweepSpec("s", [cooo_config(iq_size=32, sliq_size=512, memory_latency=100)], suite="nope")
        with pytest.raises(KeyError, match="registered suites"):
            spec.workload_names()


class TestCorruptCacheResilience:
    """A damaged cache entry is a miss (removed + re-simulated), never an error."""

    def _damage_and_recover(self, tmp_path, damage):
        cache = ResultCache(tmp_path)
        baseline = SweepEngine(cache=cache).run(small_spec())
        victim = sorted(tmp_path.glob("*.json"))[0]
        damage(victim)
        recovery_cache = ResultCache(tmp_path)
        outcome = SweepEngine(cache=recovery_cache).run(small_spec())
        assert recovery_cache.corrupt == 1
        assert outcome.simulated == 1 and outcome.cached == 3
        assert rows_of(outcome) == rows_of(baseline)
        # The bad file was removed and rewritten with a good entry.
        third = SweepEngine(cache=ResultCache(tmp_path)).run(small_spec())
        assert third.simulated == 0

    def test_hand_truncated_entry_is_a_miss(self, tmp_path):
        def truncate(path):
            payload = path.read_text()
            path.write_text(payload[: len(payload) // 2])

        self._damage_and_recover(tmp_path, truncate)

    def test_non_object_json_entry_is_a_miss(self, tmp_path):
        """A valid-JSON file whose top level is not an object used to raise
        AttributeError out of ``payload.get``; it must count as corrupt."""
        self._damage_and_recover(
            tmp_path, lambda path: path.write_text(json.dumps([1, 2, 3]))
        )

    def test_empty_file_is_a_miss(self, tmp_path):
        self._damage_and_recover(tmp_path, lambda path: path.write_text(""))

    def test_load_returns_none_and_unlinks(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("deadbeef")
        path.write_text("[:truncated")
        assert cache.load("deadbeef") is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert not path.exists()


class TestParallelTraceLocality:
    """Workload-major ordering + chunking keep worker trace caches hot."""

    def _grid_spec(self):
        configs = [
            scaled_baseline(window=32, memory_latency=100),
            scaled_baseline(window=64, memory_latency=100),
            cooo_config(iq_size=16, sliq_size=256, memory_latency=100),
            cooo_config(iq_size=32, sliq_size=512, memory_latency=100),
        ]
        return SweepSpec("locality", configs, scale=SCALE, workloads=WORKLOADS)

    @staticmethod
    def _builds_for(ordered_cells, chunksize, workers):
        """Traces each simulated worker would build under pool chunking.

        ``imap`` hands out consecutive chunks of ``chunksize`` tasks
        round-robin; each worker builds one trace per distinct workload
        it sees (the per-process ``_WORKER_TRACES`` cache).
        """
        chunks = [
            ordered_cells[i : i + chunksize]
            for i in range(0, len(ordered_cells), chunksize)
        ]
        per_worker = [set() for _ in range(workers)]
        for index, chunk in enumerate(chunks):
            per_worker[index % workers].update(cell.workload for cell in chunk)
        return sum(len(seen) for seen in per_worker)

    def test_pending_cells_are_workload_major(self):
        from repro.experiments.sweep import _workload_major

        spec = self._grid_spec()
        cells = spec.cells()
        ordered = _workload_major(cells, [None] * len(cells), spec)
        workloads_seen = [cell.workload for cell in ordered]
        # All cells of one workload are contiguous, workloads in suite order.
        assert workloads_seen == sorted(
            workloads_seen, key=lambda w: spec.workload_names().index(w)
        )
        # Config order is preserved within each workload block.
        for workload in WORKLOADS:
            block = [c.config.name for c in ordered if c.workload == workload]
            assert block == [c.name for c in spec.configs]
        # Cached cells are excluded.
        slots = [None] * len(cells)
        slots[cells[0].index] = object()
        assert len(_workload_major(cells, slots, spec)) == len(cells) - 1

    def test_ordering_and_chunksize_reduce_trace_builds(self):
        from repro.experiments.sweep import _locality_chunksize, _workload_major

        spec = self._grid_spec()
        cells = spec.cells()
        # 3 workers: config-major chunksize-1 distribution hands every
        # worker a mix of workloads (with 2 workers the 4x2 grid happens
        # to alternate into alignment, hiding the problem).
        workers = 3
        naive_builds = self._builds_for(cells, 1, workers)  # pre-PR behavior
        ordered = _workload_major(cells, [None] * len(cells), spec)
        chunksize = _locality_chunksize(ordered, workers)
        assert chunksize > 1
        tuned_builds = self._builds_for(ordered, chunksize, workers)
        assert tuned_builds < naive_builds
        # Two workers with workload-sized chunks: each worker sees exactly
        # one workload's run — the minimum possible build count.
        two_worker_builds = self._builds_for(
            ordered, _locality_chunksize(ordered, 2), 2
        )
        assert two_worker_builds == len(WORKLOADS)

    def test_worker_trace_build_counter(self):
        from repro.experiments import sweep as sweep_module
        from repro.experiments.sweep import _simulate_cell, _workload_major

        spec = self._grid_spec()
        cells = spec.cells()
        ordered = _workload_major(cells, [None] * len(cells), spec)
        tasks = [
            (cell.config.to_dict(), spec.suite, spec.scale, cell.workload, None)
            for cell in ordered
        ]
        sweep_module._WORKER_TRACES.clear()
        sweep_module.TRACE_BUILDS = 0
        for task in tasks:
            _simulate_cell(task)
        # One build per workload, not one per cell.
        assert sweep_module.TRACE_BUILDS == len(WORKLOADS)
        assert len(tasks) == len(WORKLOADS) * len(spec.configs)

    def test_parallel_run_matches_serial_with_reordering(self):
        spec = self._grid_spec()
        serial = SweepEngine(jobs=1).run(spec)
        parallel = SweepEngine(jobs=2).run(spec)
        assert rows_of(parallel) == rows_of(serial)


class TestWorkerCacheAggregation:
    """Worker-side cache traffic must reach the parent's counters.

    Parallel cells load/store the persistent cache inside the pool
    workers; the per-cell meta they report is folded back into the
    parent ResultCache counters and the SweepOutcome, so 'repro sweep'
    summary lines see the whole sweep's cache traffic.
    """

    def test_parallel_run_reports_worker_stores_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        outcome = SweepEngine(jobs=2, cache=cache).run(spec)
        cells = len(spec.cells())
        assert outcome.simulated == cells
        assert outcome.cache_hits == 0
        assert outcome.cache_misses == cells
        assert outcome.worker_busy > 0
        # Parent lookups missed every cell, worker lookups missed again,
        # and the workers stored every fresh result.
        assert cache.stores == cells
        assert cache.misses == 2 * cells
        assert cache.hits == 0

    def test_second_parallel_run_hits_in_parent(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = small_spec()
        first = SweepEngine(jobs=2, cache=cache).run(spec)
        second = SweepEngine(jobs=2, cache=cache).run(spec)
        assert second.simulated == 0
        assert second.cached == len(spec.cells())
        assert second.cache_hits == len(spec.cells())
        assert second.cache_misses == 0
        assert rows_of(second) == rows_of(first)

    def test_worker_cell_hits_cache_directly(self, tmp_path):
        from repro.experiments.sweep import _simulate_cell

        spec = small_spec()
        cell = spec.cells()[0]
        key = cell_cache_key(cell.config, spec.suite, cell.workload, spec.scale)
        task = (
            cell.config.to_dict(), spec.suite, spec.scale, cell.workload,
            None, str(tmp_path), key,
        )
        first_result, first_meta = _simulate_cell(task)
        assert first_meta["cache_hit"] is False
        assert first_meta["stored"] is True
        second_result, second_meta = _simulate_cell(task)
        assert second_meta["cache_hit"] is True
        assert second_meta["stored"] is False
        assert second_result.summary_row() == first_result.summary_row()

    def test_legacy_five_field_task_still_works(self):
        from repro.experiments.sweep import _simulate_cell

        spec = small_spec()
        cell = spec.cells()[0]
        task = (cell.config.to_dict(), spec.suite, spec.scale, cell.workload, None)
        result, meta = _simulate_cell(task)
        assert result.cycles > 0
        assert meta["cache_hit"] is False and meta["stored"] is False


class TestSweepTelemetry:
    """Per-cell tracer spans and worker-utilization metrics."""

    def _session(self):
        from repro.telemetry import TelemetrySession

        return TelemetrySession(timeline=False)

    def test_serial_cell_spans_cover_sweep_wall_clock(self):
        session = self._session()
        spec = small_spec()
        outcome = SweepEngine(jobs=1, telemetry=session).run(spec)
        tracer = session.tracer
        cell_spans = [s for s in tracer.spans if s.name.startswith("cell:")]
        assert len(cell_spans) == len(spec.cells())
        covered = sum(s.duration for s in cell_spans) + tracer.total("sweep:trace-build")
        # The per-cell spans (plus trace build) account for the sweep's
        # measured wall-clock to within 5%.
        assert covered <= outcome.elapsed
        assert covered >= 0.95 * outcome.elapsed

    def test_parallel_worker_spans_land_on_worker_tracks(self):
        session = self._session()
        spec = small_spec()
        SweepEngine(jobs=2, telemetry=session).run(spec)
        cell_spans = [s for s in session.tracer.spans if s.name.startswith("cell:")]
        assert len(cell_spans) == len(spec.cells())
        assert all(s.tid > 0 for s in cell_spans)
        metrics = session.metrics.to_dict()
        assert metrics["sweep.workers"]["value"] == 2.0
        assert 0.0 < metrics["sweep.worker_utilization"]["value"] <= 1.5
        assert metrics["sweep.cells_simulated"]["value"] == len(spec.cells())

    def test_telemetry_does_not_change_results(self):
        spec = small_spec()
        bare = SweepEngine(jobs=1).run(spec)
        observed = SweepEngine(jobs=1, telemetry=self._session()).run(spec)
        assert rows_of(observed) == rows_of(bare)


class TestResultCacheEviction:
    """The size cap added with the warm-checkpoint PR: LRU by mtime."""

    def _entry_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(jobs=1, cache=cache).run(small_spec())
        entries = sorted(tmp_path.glob("*.json"))
        assert len(entries) == 4
        return max(path.stat().st_size for path in entries)

    def test_unbounded_by_default(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(jobs=1, cache=cache).run(small_spec())
        assert cache.max_bytes is None
        assert cache.evictions == 0 and cache.evicted_bytes == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=-1)

    def test_store_evicts_down_to_budget(self, tmp_path):
        entry = self._entry_bytes(tmp_path / "probe")
        budget = 2 * entry  # room for at most two of the four entries
        cache = ResultCache(tmp_path / "capped", max_bytes=budget)
        outcome = SweepEngine(jobs=1, cache=cache).run(small_spec())
        remaining = list((tmp_path / "capped").glob("*.json"))
        assert sum(path.stat().st_size for path in remaining) <= budget
        assert len(remaining) < 4
        assert cache.evictions == 4 - len(remaining)
        assert cache.evicted_bytes > 0
        assert outcome.cache_evictions == cache.evictions

    def test_outcome_reports_zero_without_cap(self, tmp_path):
        outcome = SweepEngine(jobs=1, cache=ResultCache(tmp_path)).run(small_spec())
        assert outcome.cache_evictions == 0

    def test_lru_prefers_recently_loaded(self, tmp_path):
        """A load hit refreshes recency, so eviction removes the cold key."""
        import time as _time

        cache = ResultCache(tmp_path)
        result = SweepEngine(jobs=1, cache=cache).run(small_spec()).results[0]
        cache.clear()
        cache.store("cold", result)
        _time.sleep(0.05)
        cache.store("warm", result)
        _time.sleep(0.05)
        # Touch the older entry: it becomes the most recently used.
        assert cache.load("cold") is not None
        entry = cache.path_for("warm").stat().st_size
        capped = ResultCache(tmp_path, max_bytes=entry)
        capped.store("new", result)
        assert capped.evictions >= 1
        assert cache.path_for("cold").exists() or cache.path_for("new").exists()
        assert not cache.path_for("warm").exists(), (
            "the least recently used entry should have been evicted first"
        )

    def test_parallel_workers_report_evictions(self, tmp_path):
        entry = self._entry_bytes(tmp_path / "probe")
        cache = ResultCache(tmp_path / "capped", max_bytes=entry)
        outcome = SweepEngine(jobs=2, cache=cache).run(small_spec())
        assert outcome.cache_evictions >= 1
        remaining = list((tmp_path / "capped").glob("*.json"))
        assert sum(path.stat().st_size for path in remaining) <= entry

    def test_eviction_keeps_results_correct(self, tmp_path):
        baseline = SweepEngine(jobs=1).run(small_spec())
        entry = self._entry_bytes(tmp_path / "probe")
        capped = SweepEngine(
            jobs=1, cache=ResultCache(tmp_path / "capped", max_bytes=entry)
        ).run(small_spec())
        assert rows_of(capped) == rows_of(baseline)
