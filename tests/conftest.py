"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.common.config import cooo_config, scaled_baseline  # noqa: E402
from repro.common.stats import StatsRegistry  # noqa: E402
from repro.workloads import daxpy, fp_compute_bound, single_miss_probe  # noqa: E402


@pytest.fixture
def stats() -> StatsRegistry:
    """A fresh statistics registry."""
    return StatsRegistry()


@pytest.fixture
def small_daxpy_trace():
    """A small streaming FP trace (~350 instructions)."""
    return daxpy(elements=50)


@pytest.fixture
def compute_trace():
    """A compute-bound trace with almost no memory traffic."""
    return fp_compute_bound(iterations=60, chain_length=3)


@pytest.fixture
def miss_probe_trace():
    """One L2-missing load, a dependence chain, then independent padding."""
    return single_miss_probe(dependents=6, padding=24)


@pytest.fixture
def fast_baseline_config():
    """A small baseline machine with a short memory latency (fast to simulate)."""
    return scaled_baseline(window=64, memory_latency=50)


@pytest.fixture
def fast_cooo_config():
    """A small COoO machine with a short memory latency (fast to simulate)."""
    return cooo_config(iq_size=16, sliq_size=64, checkpoints=4, memory_latency=50)
