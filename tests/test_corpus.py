"""Replays every committed corpus file as a permanent regression gate.

Each ``tests/corpus/*.case.json`` file pins one fuzz case together with
its replay contract (machines x oracles).  Anything the fuzzer ever
caught — or any behaviorally novel case promoted as an anchor — stays
checked on every test run.  A failure here means a differential-oracle
regression: the named execution paths no longer agree on that case.
"""

from pathlib import Path

import pytest

from repro.fuzz import corpus_paths, load_case, replay_case

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
PATHS = corpus_paths(CORPUS_DIR)


def test_corpus_is_committed():
    # Guards against the corpus being accidentally emptied or moved:
    # the repository ships at least the seed cases.
    assert len(PATHS) >= 5, f"expected a committed corpus under {CORPUS_DIR}"


@pytest.mark.parametrize("path", PATHS, ids=[p.name for p in PATHS])
def test_corpus_case_replays_clean(path):
    entry = load_case(path)
    verdicts = replay_case(entry)
    assert verdicts, f"{path.name} produced no verdicts"
    failing = [str(v) for v in verdicts if not v.ok]
    assert not failing, f"{path.name}: {failing}"
