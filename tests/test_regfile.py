"""Tests for the physical register file, free list and late-allocation pool."""

import pytest

from repro.common.errors import RenameError
from repro.core.regfile import PhysicalPool, PhysicalRegisterFile


class TestPhysicalRegisterFile:
    def test_initially_all_free(self, stats):
        prf = PhysicalRegisterFile(8, stats)
        assert prf.free_count == 8
        assert prf.in_use_count == 0

    def test_allocate_free_cycle(self, stats):
        prf = PhysicalRegisterFile(4, stats)
        reg = prf.allocate()
        assert not prf.is_free(reg)
        assert prf.free_count == 3
        prf.free(reg)
        assert prf.is_free(reg)
        assert prf.free_count == 4

    def test_allocation_exhaustion(self, stats):
        prf = PhysicalRegisterFile(2, stats)
        prf.allocate()
        prf.allocate()
        assert not prf.has_free()
        with pytest.raises(RenameError):
            prf.allocate()

    def test_double_free_rejected(self, stats):
        prf = PhysicalRegisterFile(2, stats)
        reg = prf.allocate()
        prf.free(reg)
        with pytest.raises(RenameError):
            prf.free(reg)

    def test_allocated_register_starts_not_ready(self, stats):
        prf = PhysicalRegisterFile(2, stats)
        reg = prf.allocate()
        assert not prf.is_ready(reg)
        prf.set_ready(reg)
        assert prf.is_ready(reg)

    def test_free_clears_ready(self, stats):
        prf = PhysicalRegisterFile(2, stats)
        reg = prf.allocate()
        prf.set_ready(reg)
        prf.free(reg)
        assert not prf.is_ready(reg)

    def test_set_free_set_reconstruction(self, stats):
        prf = PhysicalRegisterFile(8, stats)
        for _ in range(8):
            prf.allocate()
        prf.set_free_set({1, 3, 5})
        assert prf.free_count == 3
        assert prf.is_free(3)
        assert not prf.is_free(0)

    def test_free_set_view(self, stats):
        prf = PhysicalRegisterFile(4, stats)
        reg = prf.allocate()
        assert reg not in prf.free_set()

    def test_out_of_range_rejected(self, stats):
        prf = PhysicalRegisterFile(4, stats)
        with pytest.raises(RenameError):
            prf.is_ready(4)
        with pytest.raises(RenameError):
            prf.free(-1)

    def test_reset(self, stats):
        prf = PhysicalRegisterFile(4, stats)
        prf.allocate()
        prf.reset()
        assert prf.free_count == 4

    def test_zero_registers_rejected(self, stats):
        with pytest.raises(RenameError):
            PhysicalRegisterFile(0, stats)

    def test_peak_statistic(self, stats):
        prf = PhysicalRegisterFile(4, stats, name="prf")
        prf.allocate()
        prf.allocate()
        assert stats.value("prf.peak_in_use") == 2


class TestPhysicalPool:
    def test_claim_until_exhausted(self, stats):
        pool = PhysicalPool(2, stats)
        assert pool.try_claim()
        assert pool.try_claim()
        assert not pool.try_claim()
        assert pool.available == 0

    def test_release_restores_capacity(self, stats):
        pool = PhysicalPool(2, stats)
        pool.try_claim()
        pool.release()
        assert pool.available == 2

    def test_initially_claimed(self, stats):
        pool = PhysicalPool(4, stats, initially_claimed=3)
        assert pool.claimed == 3
        assert pool.try_claim()
        assert not pool.try_claim()

    def test_over_release_rejected(self, stats):
        pool = PhysicalPool(2, stats)
        with pytest.raises(RenameError):
            pool.release()

    def test_initially_claimed_cannot_exceed_capacity(self, stats):
        with pytest.raises(RenameError):
            PhysicalPool(2, stats, initially_claimed=3)

    def test_stall_statistic(self, stats):
        pool = PhysicalPool(1, stats)
        pool.try_claim()
        pool.try_claim()
        assert stats.value("prf.late_alloc_stalls") == 1
