"""Tests for the optional hardware prefetchers."""

import pytest

from repro.common.config import MemoryConfig, scaled_baseline
from repro.common.errors import ConfigurationError
from repro.api import run as simulate
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher, build_prefetcher
from repro.workloads import daxpy, random_gather


class TestPrefetchEngines:
    def test_factory(self, stats):
        assert build_prefetcher("none", 64, 2, stats) is None
        assert isinstance(build_prefetcher("next_line", 64, 2, stats), NextLinePrefetcher)
        assert isinstance(build_prefetcher("stride", 64, 2, stats), StridePrefetcher)
        with pytest.raises(ValueError):
            build_prefetcher("markov", 64, 2, stats)

    def test_next_line_only_on_miss(self, stats):
        prefetcher = NextLinePrefetcher(64, 2, stats)
        assert prefetcher.addresses_after(0x1000, was_miss=False) == []
        assert prefetcher.addresses_after(0x1000, was_miss=True) == [0x1040, 0x1080]

    def test_next_line_aligns_to_line(self, stats):
        prefetcher = NextLinePrefetcher(64, 1, stats)
        assert prefetcher.addresses_after(0x1038, was_miss=True) == [0x1040]

    def test_stride_needs_two_confirmations(self, stats):
        prefetcher = StridePrefetcher(64, 2, stats)
        assert prefetcher.addresses_after(0x1000, was_miss=True) == []
        assert prefetcher.addresses_after(0x1008, was_miss=True) == []  # stride learned
        out = prefetcher.addresses_after(0x1010, was_miss=True)  # stride confirmed
        # A sub-line stride is widened to whole lines ahead of the stream.
        assert out == [0x1040, 0x1080]

    def test_stride_detects_large_strides(self, stats):
        prefetcher = StridePrefetcher(64, 2, stats)
        prefetcher.addresses_after(0x1000, was_miss=True)
        prefetcher.addresses_after(0x1100, was_miss=True)
        out = prefetcher.addresses_after(0x1200, was_miss=True)
        assert out == [0x1300, 0x1400]

    def test_stride_resets_on_irregular_pattern(self, stats):
        prefetcher = StridePrefetcher(64, 1, stats)
        prefetcher.addresses_after(0x1000, was_miss=True)
        prefetcher.addresses_after(0x1100, was_miss=True)
        prefetcher.addresses_after(0x5000, was_miss=True)  # breaks the stream
        assert prefetcher.addresses_after(0x9999_0000, was_miss=True) == []


class TestConfig:
    def test_rejects_unknown_prefetcher(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(prefetcher="markov").validate()

    def test_rejects_zero_degree(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(prefetcher="stride", prefetch_degree=0).validate()

    def test_default_is_disabled(self, stats):
        hierarchy = CacheHierarchy(MemoryConfig(), stats)
        assert hierarchy.prefetcher is None


class TestHierarchyIntegration:
    def test_next_line_prefetch_shortens_second_line_access(self, stats):
        config = MemoryConfig(memory_latency=400, prefetcher="next_line", prefetch_degree=2)
        hierarchy = CacheHierarchy(config, stats)
        hierarchy.data_access(0x1000_0000, False, cycle=0)      # miss, prefetches next lines
        result = hierarchy.data_access(0x1000_0040, False, cycle=300)  # next L2 line
        # Without prefetching this would be a fresh ~412-cycle memory access;
        # with it, the line is already in flight and arrives sooner.
        assert result.latency < 412
        assert stats.value("prefetch.issued") >= 2

    def test_prefetch_usefulness_counted(self, stats):
        config = MemoryConfig(memory_latency=200, prefetcher="next_line", prefetch_degree=1)
        hierarchy = CacheHierarchy(config, stats)
        hierarchy.data_access(0x2000_0000, False, cycle=0)
        hierarchy.data_access(0x2000_0040, False, cycle=500)
        assert stats.value("prefetch.useful") >= 1

    def test_prefetch_disabled_under_perfect_l2(self, stats):
        config = MemoryConfig(perfect_l2=True, prefetcher="next_line")
        hierarchy = CacheHierarchy(config, stats)
        hierarchy.data_access(0x3000_0000, False, cycle=0)
        assert stats.value("l2.mshr.allocations") == 0


class TestEndToEnd:
    def test_stride_prefetch_helps_streaming_baseline(self):
        trace = daxpy(elements=200)
        plain = scaled_baseline(window=128, memory_latency=800)
        with_prefetch = scaled_baseline(window=128, memory_latency=800)
        with_prefetch.memory.prefetcher = "stride"
        with_prefetch.memory.prefetch_degree = 4
        with_prefetch.validate()
        base = simulate(plain, trace)
        prefetched = simulate(with_prefetch, trace)
        assert prefetched.ipc > base.ipc * 1.2

    def test_prefetch_helps_irregular_access_less_than_streaming(self):
        """Stride prefetching cannot cover the random gathered loads (only the
        sequential index/output streams), so its gain on the gather kernel is
        smaller than on pure streaming — the paper's argument for attacking
        the instruction window instead of relying on prefetching alone."""
        latency = 800
        gains = {}
        for trace in (daxpy(elements=200), random_gather(elements=150)):
            plain = scaled_baseline(window=128, memory_latency=latency)
            with_prefetch = scaled_baseline(window=128, memory_latency=latency)
            with_prefetch.memory.prefetcher = "stride"
            with_prefetch.memory.prefetch_degree = 4
            with_prefetch.validate()
            gains[trace.name] = simulate(with_prefetch, trace).ipc / simulate(plain, trace).ipc
        assert gains["daxpy"] > gains["gather"]
        # And even with prefetching, the gather kernel stays memory-bound.
        assert gains["gather"] < 3.0
