"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import WORKLOADS, build_machine, build_parser, main


class TestParser:
    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
        assert "simulate" in capsys.readouterr().out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out
        assert "spec2000fp_like" in out
        assert "figure09" in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_simulate_requires_workload_or_suite(self, capsys):
        assert main(["simulate", "--machine", "baseline"]) == 2
        assert "workload" in capsys.readouterr().err


class TestBuildMachine:
    def _args(self, **overrides):
        parser = build_parser()
        defaults = ["simulate", "--workload", "daxpy"]
        return parser.parse_args(defaults + overrides.pop("extra", []))

    def test_baseline_machine(self):
        args = self._args(extra=["--machine", "baseline", "--window", "256", "--memory-latency", "500"])
        config = build_machine(args)
        assert config.mode == "baseline"
        assert config.core.rob_size == 256
        assert config.memory.memory_latency == 500

    def test_cooo_machine(self):
        args = self._args(extra=["--machine", "cooo", "--iq-size", "32", "--sliq-size", "512",
                                 "--checkpoints", "4"])
        config = build_machine(args)
        assert config.mode == "cooo"
        assert config.core.int_queue_size == 32
        assert config.sliq.size == 512
        assert config.checkpoint.table_size == 4

    def test_cooo_late_allocation(self):
        args = self._args(extra=["--machine", "cooo", "--late-allocation",
                                 "--virtual-tags", "512", "--physical-registers", "256"])
        config = build_machine(args)
        assert config.regalloc.late_allocation
        assert config.regalloc.virtual_tags == 512
        assert config.core.physical_registers == 256


class TestSimulateCommand:
    def test_single_workload(self, capsys):
        code = main([
            "simulate", "--machine", "cooo", "--workload", "fp_compute",
            "--size", "100", "--memory-latency", "100",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fp_compute" in out
        assert "ipc" in out

    def test_baseline_workload(self, capsys):
        code = main([
            "simulate", "--machine", "baseline", "--workload", "daxpy",
            "--size", "80", "--window", "64", "--memory-latency", "100",
        ])
        assert code == 0
        assert "daxpy" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        code = main([
            "simulate", "--machine", "cooo", "--workload", "fp_compute",
            "--size", "60", "--memory-latency", "100", "--json", str(target),
        ])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["machine"]["mode"] == "cooo"
        assert "fp_compute" in payload["results"]

    def test_all_cli_workloads_are_generators(self):
        for name, generator in WORKLOADS.items():
            trace = generator(20)
            assert len(trace) > 0, name


class TestExperimentCommand:
    def test_runs_figure07(self, capsys, tmp_path):
        target = tmp_path / "fig07.json"
        code = main(["experiment", "figure07", "--scale", "0.08", "--json", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "figure07" in out
        payload = json.loads(target.read_text())
        assert payload["experiment"] == "figure07"
        assert payload["rows"]


class TestWorkloadRegistryCli:
    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "registered workloads:" in out
        assert "registered suites:" in out
        # knobs and base sizes are shown
        assert "base_size=" in out
        assert "taken_probability=0.5" in out
        # the three scenario suites are catalogued with their members
        assert "pointer-chase: chase_cold" in out
        assert "branch-storm: storm_even" in out
        assert "server-mix: phased" in out

    def test_list_still_shows_new_suites(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pointer-chase" in out
        assert "dense_branches" in out

    def test_unknown_workload_lists_registered_names(self, capsys):
        assert main(["simulate", "--machine", "baseline", "--workload", "nope"]) == 2
        err = capsys.readouterr().err
        assert "registered workloads" in err
        assert "daxpy" in err

    def test_unknown_suite_lists_registered_names(self, capsys):
        assert main(["simulate", "--machine", "baseline", "--suite", "nope"]) == 2
        err = capsys.readouterr().err
        assert "registered suites" in err
        assert "spec2000fp_like" in err

    def test_simulate_new_suite_end_to_end(self, capsys):
        assert main(["simulate", "--machine", "baseline", "--suite", "branch-storm",
                     "--scale", "0.05", "--memory-latency", "100"]) == 0
        out = capsys.readouterr().out
        assert "storm_even" in out
        assert "suite average IPC" in out

    def test_workloads_view_is_live(self):
        from repro.workloads.registry import register_workload, unregister_workload
        from repro.workloads import daxpy

        @register_workload("tmp_cli_view")
        def tmp(size):
            return daxpy(elements=max(4, size))

        try:
            assert "tmp_cli_view" in WORKLOADS
            assert len(WORKLOADS["tmp_cli_view"](8)) > 0
        finally:
            unregister_workload("tmp_cli_view")
        assert "tmp_cli_view" not in WORKLOADS


class TestSuiteSweepCli:
    def test_sweep_suite_runs_machine_grid(self, capsys, tmp_path):
        assert main(["sweep", "--suite", "pointer-chase", "--scale", "0.05",
                     "--no-cache", "--quiet",
                     "--json", str(tmp_path / "out.json")]) == 0
        out = capsys.readouterr().out
        assert "chase_cold" in out
        assert "mean_ipc" in out
        assert (tmp_path / "out.json").exists()

    def test_sweep_without_names_or_suite_errors(self, capsys):
        assert main(["sweep"]) == 2
        assert "--suite" in capsys.readouterr().err

    def test_sweep_unknown_suite_errors(self, capsys):
        assert main(["sweep", "--suite", "nope", "--no-cache", "--quiet"]) == 2
        assert "registered suites" in capsys.readouterr().err

    def test_experiment_unknown_suite_errors(self, capsys):
        assert main(["experiment", "figure07", "--suite", "nope", "--no-cache"]) == 2
        assert "registered suites" in capsys.readouterr().err

    def test_sweep_names_with_unknown_suite_errors(self, capsys):
        assert main(["sweep", "figure07", "--suite", "nope", "--no-cache", "--quiet"]) == 2
        assert "registered suites" in capsys.readouterr().err

    def test_experiment_accepts_suite_override(self, capsys):
        assert main(["experiment", "figure07", "--scale", "0.05",
                     "--suite", "branch-storm", "--no-cache"]) == 0
        assert "figure07" in capsys.readouterr().out


class TestSampleFlagErrors:
    """Malformed --sample specs must exit 2 with a message naming the field."""

    def _run(self, capsys, spec):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--workload", "daxpy", "--scale", "0.05",
                  "--sample", spec])
        assert excinfo.value.code == 2
        return capsys.readouterr().err

    def test_not_integers(self, capsys):
        err = self._run(capsys, "abc:8000")
        assert "period" in err and "'abc'" in err

    def test_single_field_names_expected_shape(self, capsys):
        err = self._run(capsys, "abc")
        assert "2 to 4" in err and "'abc'" in err

    def test_too_few_fields(self, capsys):
        err = self._run(capsys, "50000")
        assert "2 to 4" in err

    def test_too_many_fields(self, capsys):
        err = self._run(capsys, "1:2:3:4:5")
        assert "2 to 4" in err

    def test_non_integer_window(self, capsys):
        err = self._run(capsys, "50000:8k")
        assert "window" in err and "'8k'" in err

    def test_non_integer_warmup(self, capsys):
        err = self._run(capsys, "50000:8000:warm")
        assert "warmup" in err

    def test_zero_period_rejected_by_validation(self, capsys):
        err = self._run(capsys, "0:8000")
        assert "period" in err

    def test_window_larger_than_period(self, capsys):
        err = self._run(capsys, "1000:8000")
        assert "window" in err or "period" in err

    def test_sweep_reports_sample_errors_identically(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--suite", "pointer-chase", "--scale", "0.05",
                  "--no-cache", "--quiet", "--sample", "bogus:8000"])
        assert excinfo.value.code == 2
        assert "period" in capsys.readouterr().err


class TestCheckpointCommand:
    """repro checkpoint save|info|gc (mirrors 'repro trace')."""

    SAVE = [
        "checkpoint", "save", "--workload", "daxpy", "--size", "2000",
        "--sample", "5000:600:200", "--machine", "baseline",
        "--window", "1024", "--memory-latency", "300",
    ]

    def test_save_then_info_then_gc(self, tmp_path, capsys):
        assert main(self.SAVE + ["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "key " in out
        files = list(tmp_path.glob("*.warm.gz"))
        assert len(files) == 1

        assert main(["checkpoint", "info", str(files[0])]) == 0
        out = capsys.readouterr().out
        assert "daxpy" in out and "windows" in out and "plan 5000:600:200" in out

        assert main(["checkpoint", "gc", "--dir", str(tmp_path), "--max-bytes", "0"]) == 0
        assert "evicted 1 checkpoint(s)" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.warm.gz"))

    def test_save_is_reused_second_time(self, tmp_path, capsys):
        assert main(self.SAVE + ["--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(self.SAVE + ["--dir", str(tmp_path)]) == 0
        assert "reused" in capsys.readouterr().out

    def test_save_requires_sample(self, tmp_path, capsys):
        args = [f for f in self.SAVE if f not in ("--sample", "5000:600:200")]
        assert main(args + ["--dir", str(tmp_path)]) == 2
        assert "--sample" in capsys.readouterr().err

    def test_save_requires_workload_or_trace(self, tmp_path, capsys):
        assert main([
            "checkpoint", "save", "--sample", "5000:600:200",
            "--dir", str(tmp_path),
        ]) == 2
        assert "provide --workload or --trace" in capsys.readouterr().err

    def test_save_from_trace_file(self, tmp_path, capsys):
        assert main([
            "trace", "save", "--workload", "daxpy", "--size", "2000",
            "--out", str(tmp_path / "d.trace.gz"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "checkpoint", "save", "--trace", str(tmp_path / "d.trace.gz"),
            "--sample", "5000:600:200", "--machine", "baseline",
            "--window", "1024", "--memory-latency", "300",
            "--dir", str(tmp_path),
        ]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_info_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.warm.gz"
        bad.write_bytes(b"not a gzip file")
        assert main(["checkpoint", "info", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_gc_rejects_missing_directory(self, tmp_path, capsys):
        assert main([
            "checkpoint", "gc", "--dir", str(tmp_path / "nope"), "--max-bytes", "10",
        ]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_simulate_sample_jobs_matches_serial(self, tmp_path, capsys):
        base = [
            "simulate", "--machine", "baseline", "--window", "1024",
            "--workload", "daxpy", "--size", "2000",
            "--memory-latency", "300", "--sample", "5000:600:200",
        ]
        assert main(base + ["--json", str(tmp_path / "serial.json")]) == 0
        capsys.readouterr()
        assert main(base + [
            "--sample-jobs", "2", "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--json", str(tmp_path / "parallel.json"),
        ]) == 0
        capsys.readouterr()
        serial = json.loads((tmp_path / "serial.json").read_text())
        parallel = json.loads((tmp_path / "parallel.json").read_text())
        assert serial["results"] == parallel["results"]
