"""Tests for trace file I/O (save/load/info) and the hardened round-trip."""

import gzip
import json

import pytest

from repro.api import run
from repro.common.config import cooo_config
from repro.common.errors import TraceError
from repro.trace.io import (
    TRACE_FORMAT,
    TRACE_FORMAT_VERSION,
    load_trace,
    save_trace,
    trace_info,
)
from repro.trace.trace import Trace
from repro.workloads import daxpy, random_gather
from repro.workloads.registry import get_suite


@pytest.fixture
def gather_trace():
    return random_gather(elements=200)


class TestRoundTrip:
    def test_save_load_is_exact(self, tmp_path, gather_trace):
        path = save_trace(gather_trace, tmp_path / "gather.trace.gz")
        loaded = load_trace(path)
        assert loaded.name == gather_trace.name
        assert len(loaded) == len(gather_trace)
        for original, restored in zip(gather_trace, loaded):
            assert original == restored  # frozen dataclass: field-exact equality

    def test_labels_and_metadata_preserved(self, tmp_path):
        trace = get_suite("server-mix").build(scale=0.1)["phased"]
        loaded = load_trace(save_trace(trace, tmp_path / "phased.trace.gz"))
        assert [i.label for i in loaded] == [i.label for i in trace]
        assert [i.srcs for i in loaded] == [i.srcs for i in trace]
        assert loaded.to_jsonl() == trace.to_jsonl()

    def test_trace_save_method_round_trips(self, tmp_path, gather_trace):
        path = gather_trace.save(tmp_path / "via_method.trace.gz")
        assert Trace.load(path).to_jsonl() == gather_trace.to_jsonl()

    def test_dedup_shrinks_file(self, tmp_path):
        trace = daxpy(elements=500)
        path = save_trace(trace, tmp_path / "daxpy.trace.gz")
        header = trace_info(path)
        assert header["instructions"] == len(trace)
        assert header["distinct_instructions"] < len(trace) // 2

    def test_loaded_trace_simulates_identically(self, tmp_path, gather_trace):
        config = cooo_config(iq_size=32, sliq_size=256, memory_latency=200)
        path = save_trace(gather_trace, tmp_path / "sim.trace.gz")
        fresh = run(config, gather_trace)
        replayed = run(config, load_trace(path))
        assert replayed.to_dict() == fresh.to_dict()

    def test_overwrite_is_atomic_and_clean(self, tmp_path, gather_trace):
        path = tmp_path / "twice.trace.gz"
        save_trace(gather_trace, path)
        save_trace(gather_trace, path)
        assert load_trace(path).to_jsonl() == gather_trace.to_jsonl()
        assert list(tmp_path.iterdir()) == [path]  # no temp files left behind

    def test_info_reads_header_only(self, tmp_path, gather_trace):
        path = save_trace(gather_trace, tmp_path / "info.trace.gz")
        header = trace_info(path)
        assert header["format"] == TRACE_FORMAT
        assert header["version"] == TRACE_FORMAT_VERSION
        assert header["name"] == "gather"


def _write_gz(path, lines):
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write("\n".join(lines))
    return path


class TestMalformedInput:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "absent.trace.gz")

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "plain.trace.gz"
        path.write_text("not gzip at all")
        with pytest.raises(TraceError, match="not a readable trace file"):
            load_trace(path)

    def test_garbage_header(self, tmp_path):
        path = _write_gz(tmp_path / "garbage.trace.gz", ["{not json"])
        with pytest.raises(TraceError, match="malformed trace header"):
            load_trace(path)

    def test_wrong_format_marker(self, tmp_path):
        path = _write_gz(
            tmp_path / "marker.trace.gz", [json.dumps({"format": "elf", "version": 1})]
        )
        with pytest.raises(TraceError, match="not a repro-trace file"):
            load_trace(path)

    def test_version_mismatch(self, tmp_path):
        header = {
            "format": TRACE_FORMAT,
            "version": TRACE_FORMAT_VERSION + 1,
            "name": "x",
            "instructions": 1,
        }
        path = _write_gz(tmp_path / "future.trace.gz", [json.dumps(header)])
        with pytest.raises(TraceError, match="unsupported trace format version"):
            load_trace(path)

    def test_non_positive_instruction_count_rejected(self, tmp_path):
        for count in (0, -3, "many", True):
            header = {"format": TRACE_FORMAT, "version": TRACE_FORMAT_VERSION,
                      "name": "x", "instructions": count}
            path = _write_gz(tmp_path / f"count_{count}.trace.gz", [json.dumps(header)])
            with pytest.raises(TraceError, match="not a positive int"):
                trace_info(path)

    def test_missing_header_fields(self, tmp_path):
        header = {"format": TRACE_FORMAT, "version": TRACE_FORMAT_VERSION}
        path = _write_gz(tmp_path / "partial.trace.gz", [json.dumps(header)])
        with pytest.raises(TraceError, match="missing"):
            load_trace(path)

    def _header(self, instructions=1):
        return json.dumps(
            {
                "format": TRACE_FORMAT,
                "version": TRACE_FORMAT_VERSION,
                "name": "x",
                "instructions": instructions,
            }
        )

    @staticmethod
    def _record(dest=None):
        # One int_alu instruction in the body's positional column order.
        return [0, "int_alu", dest, [], None, 8, False, None, False, ""]

    def _body(self, records, index):
        from repro.trace.io import RECORD_FIELDS

        return json.dumps({"fields": list(RECORD_FIELDS), "records": records, "index": index})

    def test_truncated_body(self, tmp_path):
        path = _write_gz(tmp_path / "nobody.trace.gz", [self._header()])
        with pytest.raises(TraceError, match="malformed trace body"):
            load_trace(path)

    def test_unknown_record_layout(self, tmp_path):
        body = json.dumps({"fields": ["pc", "op"], "records": [], "index": []})
        path = _write_gz(tmp_path / "layout.trace.gz", [self._header(), body])
        with pytest.raises(TraceError, match="unsupported record layout"):
            load_trace(path)

    def test_malformed_record(self, tmp_path):
        body = self._body([[0, "int_alu"]], [0])  # truncated record
        path = _write_gz(tmp_path / "badrec.trace.gz", [self._header(), body])
        with pytest.raises(TraceError, match="malformed instruction record"):
            load_trace(path)

    def test_unknown_opcode(self, tmp_path):
        record = self._record()
        record[1] = "warp_drive"
        body = self._body([record], [0])
        path = _write_gz(tmp_path / "badop.trace.gz", [self._header(), body])
        with pytest.raises(TraceError, match="malformed instruction record"):
            load_trace(path)

    def test_invalid_register_in_record(self, tmp_path):
        body = self._body([self._record(dest=999)], [0])
        path = _write_gz(tmp_path / "badreg.trace.gz", [self._header(), body])
        with pytest.raises(TraceError, match="malformed instruction record"):
            load_trace(path)

    def test_dangling_index(self, tmp_path):
        body = self._body([self._record()], [0, 5])
        path = _write_gz(tmp_path / "dangling.trace.gz", [self._header(2), body])
        with pytest.raises(TraceError, match="missing record"):
            load_trace(path)

    def test_negative_index_rejected(self, tmp_path):
        # Python's negative indexing must not silently alias records.
        body = self._body([self._record()], [0, -1])
        path = _write_gz(tmp_path / "negative.trace.gz", [self._header(2), body])
        with pytest.raises(TraceError, match="missing record"):
            load_trace(path)

    def test_non_integer_index_rejected(self, tmp_path):
        body = self._body([self._record()], [0, "x"])
        path = _write_gz(tmp_path / "strindex.trace.gz", [self._header(2), body])
        with pytest.raises(TraceError, match="missing record"):
            load_trace(path)

    def test_count_mismatch(self, tmp_path):
        body = self._body([self._record()], [0])
        path = _write_gz(tmp_path / "count.trace.gz", [self._header(7), body])
        with pytest.raises(TraceError, match="promises 7 instructions"):
            load_trace(path)

    def test_empty_trace_rejected(self, tmp_path):
        # An instruction count of zero is already rejected at the header.
        body = self._body([], [])
        path = _write_gz(tmp_path / "empty.trace.gz", [self._header(0), body])
        with pytest.raises(TraceError, match="not a positive int"):
            load_trace(path)

    def test_empty_body_with_claimed_count_rejected(self, tmp_path):
        body = self._body([], [])
        path = _write_gz(tmp_path / "emptybody.trace.gz", [self._header(3), body])
        with pytest.raises(TraceError, match="promises 3 instructions"):
            load_trace(path)

    def test_jsonl_round_trip_raises_trace_error_not_key_error(self):
        # Satellite requirement: malformed jsonl surfaces TraceError.
        for bad in ('{"op": "int_alu"}', '{"pc": 0}', "[1, 2]", "{broken"):
            with pytest.raises(TraceError):
                Trace.from_jsonl(bad)


class TestHostileInput:
    """Byte-level hostility: every case must surface as TraceError naming
    the path — never a raw EOFError/UnicodeDecodeError/KeyError."""

    def test_truncated_gzip_stream(self, tmp_path, gather_trace):
        path = save_trace(gather_trace, tmp_path / "whole.trace.gz")
        blob = path.read_bytes()
        truncated = tmp_path / "torn.trace.gz"
        truncated.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(TraceError, match="torn.trace.gz"):
            load_trace(truncated)
        with pytest.raises(TraceError, match="torn.trace.gz"):
            trace_info(truncated)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.trace.gz"
        path.write_bytes(b"")
        # A zero-byte file reads as an empty gzip stream: the header line
        # comes back blank and fails JSON parsing with the path named.
        with pytest.raises(TraceError, match="empty.trace.gz"):
            load_trace(path)

    def test_gzip_wrapped_binary_garbage(self, tmp_path):
        path = tmp_path / "binary.trace.gz"
        with gzip.open(path, "wb") as handle:
            handle.write(b"\xff\xfe\x00\x01binary sludge\x80\x81\x82" * 64)
        with pytest.raises(TraceError, match="binary.trace.gz"):
            load_trace(path)

    def test_gzip_header_only_no_payload(self, tmp_path):
        # A valid gzip container holding nothing: both lines read empty.
        path = tmp_path / "hollow.trace.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("")
        with pytest.raises(TraceError, match="malformed trace header"):
            load_trace(path)

    def test_boolean_version_rejected(self, tmp_path):
        # True == 1 in Python, so a naive `version != 1` check would let
        # {"version": true} through; the loader must type-check first.
        header = {"format": TRACE_FORMAT, "version": True,
                  "name": "x", "instructions": 1}
        path = _write_gz(tmp_path / "boolver.trace.gz", [json.dumps(header)])
        with pytest.raises(TraceError, match="unsupported trace format version True"):
            load_trace(path)

    def test_wrong_type_version_rejected(self, tmp_path):
        for version in ("1", 1.0, None, [1]):
            header = {"format": TRACE_FORMAT, "version": version,
                      "name": "x", "instructions": 1}
            path = _write_gz(tmp_path / "typever.trace.gz", [json.dumps(header)])
            with pytest.raises(TraceError, match="unsupported trace format version"):
                load_trace(path)


class TestTraceCli:
    def test_save_info_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "w.trace.gz"
        assert main(["trace", "save", "--workload", "daxpy", "--size", "60",
                     "--out", str(out)]) == 0
        assert main(["trace", "info", str(out)]) == 0
        assert "daxpy" in capsys.readouterr().out
        assert main(["trace", "run", str(out), "--machine", "baseline",
                     "--memory-latency", "100"]) == 0
        assert "ipc" in capsys.readouterr().out

    def test_save_suite_writes_member_files(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "suite-traces"
        assert main(["trace", "save", "--suite", "branch-storm", "--scale", "0.05",
                     "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        files = sorted(p.name for p in out_dir.iterdir())
        assert files == [
            "storm_biased.trace.gz",
            "storm_dense.trace.gz",
            "storm_even.trace.gz",
        ]
        # header names carry the member name, not the kernel name
        assert trace_info(out_dir / "storm_even.trace.gz")["name"] == "storm_even"

    def test_unknown_names_error_with_listing(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "save", "--workload", "nope"]) == 2
        assert "registered workloads" in capsys.readouterr().err
        assert main(["trace", "save", "--suite", "nope"]) == 2
        assert "registered suites" in capsys.readouterr().err

    def test_save_rejects_mismatched_output_flags(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "save", "--suite", "branch-storm",
                     "--out", str(tmp_path / "x.trace.gz")]) == 2
        assert "--out-dir" in capsys.readouterr().err
        assert main(["trace", "save", "--workload", "daxpy",
                     "--out-dir", str(tmp_path)]) == 2
        assert "--out" in capsys.readouterr().err

    def test_info_on_bad_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.trace.gz"
        bad.write_text("junk")
        assert main(["trace", "info", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_without_action_prints_help(self, capsys):
        from repro.cli import main

        assert main(["trace"]) == 2
