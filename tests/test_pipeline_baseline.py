"""Integration tests of the conventional (ROB) baseline pipeline."""

import pytest

from repro.common.config import scaled_baseline, table1_baseline
from repro.common.errors import SimulationError
from repro.core.pipeline import BaselinePipeline
from repro.core.registry_machines import create_pipeline
from repro.api import run as simulate
from repro.core.processor import Processor
from repro.isa import registers as regs
from repro.isa.instruction import InstState
from repro.isa.opcodes import OpClass
from repro.workloads import daxpy, fp_compute_bound, pointer_chase
from repro.workloads.builder import TraceBuilder
from repro.workloads.integer import branchy_integer


class TestBasicExecution:
    def test_commits_every_instruction(self, fast_baseline_config, compute_trace):
        result = simulate(fast_baseline_config, compute_trace)
        assert result.committed_instructions == len(compute_trace)
        assert result.cycles > 0
        assert 0 < result.ipc <= 4.0

    def test_ipc_bounded_by_machine_width(self, fast_baseline_config, compute_trace):
        result = simulate(fast_baseline_config, compute_trace)
        assert result.ipc <= fast_baseline_config.core.fetch_width

    def test_single_instruction_trace(self, fast_baseline_config):
        builder = TraceBuilder("one")
        builder.int_op(regs.int_reg(1))
        result = simulate(fast_baseline_config, builder.build())
        assert result.committed_instructions == 1

    def test_serial_chain_is_latency_bound(self, fast_baseline_config):
        chain = fp_compute_bound(iterations=40, chain_length=6)
        result = simulate(fast_baseline_config, chain)
        # The accumulator chain serialises iterations: at least one 2-cycle
        # FP addition per iteration no matter how wide the machine is.
        assert result.cycles >= 40 * 2

    def test_build_pipeline_factory(self, fast_baseline_config, compute_trace):
        pipeline = create_pipeline(fast_baseline_config, compute_trace)
        assert isinstance(pipeline, BaselinePipeline)

    def test_max_cycles_guard(self, fast_baseline_config, small_daxpy_trace):
        pipeline = create_pipeline(fast_baseline_config, small_daxpy_trace)
        with pytest.raises(SimulationError):
            pipeline.run(max_cycles=3)

    def test_processor_run_suite(self, fast_baseline_config, compute_trace, miss_probe_trace):
        processor = Processor(fast_baseline_config)
        with pytest.warns(DeprecationWarning):
            results = processor.run_suite({"a": compute_trace, "b": miss_probe_trace})
        assert set(results) == {"a", "b"}
        assert all(r.committed_instructions > 0 for r in results.values())


class TestWindowScaling:
    def test_bigger_window_tolerates_latency(self):
        trace = daxpy(elements=150)
        small = simulate(scaled_baseline(window=32, memory_latency=300), trace)
        large = simulate(scaled_baseline(window=512, memory_latency=300), trace)
        assert large.ipc > small.ipc * 1.5

    def test_window_bounds_in_flight(self):
        trace = daxpy(elements=150)
        result = simulate(scaled_baseline(window=32, memory_latency=300), trace)
        assert result.stat("rob.occupancy.mean") <= 32

    def test_perfect_l2_removes_memory_penalty(self):
        trace = daxpy(elements=100)
        slow = simulate(scaled_baseline(window=128, memory_latency=1000), trace)
        perfect = simulate(scaled_baseline(window=128, memory_latency=1000, perfect_l2=True), trace)
        assert perfect.ipc > slow.ipc * 2

    def test_memory_latency_hurts_small_window(self):
        trace = daxpy(elements=100)
        fast = simulate(scaled_baseline(window=128, memory_latency=50), trace)
        slow = simulate(scaled_baseline(window=128, memory_latency=800), trace)
        assert fast.ipc > slow.ipc

    def test_pointer_chase_insensitive_to_window(self):
        trace = pointer_chase(hops=60)
        small = simulate(scaled_baseline(window=64, memory_latency=200), trace)
        large = simulate(scaled_baseline(window=1024, memory_latency=200), trace)
        assert large.ipc == pytest.approx(small.ipc, rel=0.1)


class TestMemoryAndStores:
    def test_stores_drain_at_commit(self, fast_baseline_config, small_daxpy_trace):
        result = simulate(fast_baseline_config, small_daxpy_trace)
        assert result.stat("mem.stores") == small_daxpy_trace.count(OpClass.FP_STORE)

    def test_load_misses_counted(self, fast_baseline_config, small_daxpy_trace):
        result = simulate(fast_baseline_config, small_daxpy_trace)
        assert result.stat("mem.loads") > 0
        assert result.l2_load_miss_fraction > 0

    def test_store_forwarding_happens_on_reuse(self, fast_baseline_config):
        builder = TraceBuilder("fwd")
        addr = 0x1000_0000
        builder.fp_add(regs.fp_reg(2))
        builder.store(addr, regs.fp_reg(2))
        builder.load(regs.fp_reg(3), addr)
        builder.branch(taken=False)
        result = simulate(fast_baseline_config, builder.build())
        assert result.stat("lsq.store_forwards") >= 1


class TestBranchesAndExceptions:
    def test_loop_branches_predicted_well(self, fast_baseline_config, small_daxpy_trace):
        result = simulate(fast_baseline_config, small_daxpy_trace)
        assert result.branch_accuracy > 0.9

    def test_random_branches_cause_recoveries(self):
        trace = branchy_integer(iterations=120, taken_probability=0.5)
        result = simulate(scaled_baseline(window=128, memory_latency=100), trace)
        assert result.stat("branch.recoveries") > 10
        assert result.committed_instructions == len(trace)

    def test_mispredictions_cost_cycles(self):
        predictable = branchy_integer(iterations=120, taken_probability=1.0)
        random_branches = branchy_integer(iterations=120, taken_probability=0.5)
        config = scaled_baseline(window=128, memory_latency=100)
        good = simulate(config, predictable)
        bad = simulate(config, random_branches)
        assert good.ipc > bad.ipc

    def test_exception_delivered_at_commit(self, fast_baseline_config):
        builder = TraceBuilder("exc")
        for _ in range(10):
            builder.int_op(regs.int_reg(1), regs.int_reg(2))
        builder.emit(OpClass.INT_ALU, dest=regs.int_reg(3), raises_exception=True)
        for _ in range(10):
            builder.int_op(regs.int_reg(4), regs.int_reg(3))
        builder.branch(taken=False)
        result = simulate(fast_baseline_config, builder.build())
        assert result.stat("exceptions.delivered") == 1
        assert result.committed_instructions == len(builder.build())


class TestAccountingInvariants:
    def test_fetched_at_least_committed(self, fast_baseline_config, small_daxpy_trace):
        result = simulate(fast_baseline_config, small_daxpy_trace)
        assert result.fetched_instructions >= result.committed_instructions

    def test_in_flight_returns_to_zero(self, fast_baseline_config, small_daxpy_trace):
        pipeline = create_pipeline(fast_baseline_config, small_daxpy_trace)
        pipeline.run()
        assert pipeline.occupancy.in_flight == 0
        assert pipeline.occupancy.live == 0
        assert pipeline.rob.is_empty

    def test_all_registers_recoverable(self, fast_baseline_config, small_daxpy_trace):
        pipeline = create_pipeline(fast_baseline_config, small_daxpy_trace)
        pipeline.run()
        # Every renamed destination was either freed or is the architectural
        # mapping: exactly NUM_LOGICAL_REGS registers stay in use.
        assert pipeline.regfile.in_use_count == regs.NUM_LOGICAL_REGS

    def test_table1_runs(self, compute_trace):
        result = simulate(table1_baseline(memory_latency=100), compute_trace)
        assert result.committed_instructions == len(compute_trace)

    def test_occupancy_statistics_recorded(self, fast_baseline_config, small_daxpy_trace):
        result = simulate(fast_baseline_config, small_daxpy_trace)
        assert result.mean_in_flight > 0
        assert "occupancy.in_flight_dist" in result.stats
