"""Tests for the workload/suite registry and the three scenario suites."""

import pytest

from repro.common.errors import ConfigurationError
from repro.trace.trace import Trace
from repro.workloads import daxpy
from repro.workloads.registry import (
    WorkloadSpec,
    build_workload,
    get_suite,
    get_suite_spec,
    get_workload,
    register_suite,
    register_workload,
    suite_names,
    suite_specs,
    unregister_suite,
    unregister_workload,
    workload_names,
    workload_specs,
)
from repro.workloads.suite import SUITES, Suite, SuiteMember

BUILTIN_WORKLOADS = {
    "daxpy",
    "triad",
    "stencil3",
    "reduction",
    "gather",
    "matvec",
    "blocked",
    "fp_compute",
    "pointer_chase",
    "multi_chase",
    "branchy_int",
    "dense_branches",
    "mixed",
}

BUILTIN_SUITES = {
    "spec2000fp_like",
    "integer_like",
    "pointer-chase",
    "branch-storm",
    "server-mix",
}


class TestWorkloadRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_WORKLOADS <= set(workload_names())

    def test_specs_sorted_and_described(self):
        specs = workload_specs()
        assert [spec.name for spec in specs] == sorted(spec.name for spec in specs)
        assert all(spec.description for spec in specs)

    def test_get_workload_unknown_lists_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_workload("no_such_workload")
        message = excinfo.value.args[0]
        assert "no_such_workload" in message
        assert "daxpy" in message  # the error enumerates registered names

    def test_build_by_name(self):
        trace = build_workload("daxpy", size=32)
        assert isinstance(trace, Trace)
        assert trace.to_jsonl() == daxpy(elements=32).to_jsonl()

    def test_build_by_scale(self):
        spec = get_workload("daxpy")
        assert len(spec.build(scale=0.1)) == len(spec.build(size=spec.base_size // 10))

    def test_knob_override(self):
        a = build_workload("gather", size=64, seed=1)
        b = build_workload("gather", size=64, seed=2)
        assert a.to_jsonl() != b.to_jsonl()

    def test_unknown_knob_rejected(self):
        with pytest.raises(KeyError) as excinfo:
            build_workload("gather", size=64, sneed=1)
        assert "sneed" in str(excinfo.value)
        assert "seed" in str(excinfo.value)  # valid knobs are listed

    def test_register_and_unregister(self):
        @register_workload("tmp_registry_wl", description="ephemeral", base_size=64)
        def tmp(size):
            return daxpy(elements=max(4, size))

        try:
            assert get_workload("tmp_registry_wl").description == "ephemeral"
            assert len(build_workload("tmp_registry_wl", size=8)) > 0
        finally:
            unregister_workload("tmp_registry_wl")
        assert "tmp_registry_wl" not in workload_names()

    def test_reregistration_same_function_is_noop(self):
        def generator(size):
            return daxpy(elements=max(4, size))

        register_workload("tmp_registry_idem")(generator)
        try:
            register_workload("tmp_registry_idem")(generator)  # no raise
            with pytest.raises(ConfigurationError):
                register_workload("tmp_registry_idem")(lambda size: daxpy(elements=4))
        finally:
            unregister_workload("tmp_registry_idem")

    def test_bad_registration_arguments(self):
        with pytest.raises(ConfigurationError):
            register_workload("")
        with pytest.raises(ConfigurationError):
            register_workload("x", base_size=0)

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            unregister_workload("never_registered")

    def test_description_defaults_to_docstring(self):
        @register_workload("tmp_registry_doc")
        def documented(size):
            """First line becomes the description.

            Not this one.
            """
            return daxpy(elements=max(4, size))

        try:
            assert (
                get_workload("tmp_registry_doc").description
                == "First line becomes the description."
            )
        finally:
            unregister_workload("tmp_registry_doc")


class TestSuiteRegistry:
    def test_builtins_registered(self):
        assert BUILTIN_SUITES <= set(suite_names())

    def test_get_suite_unknown_lists_names(self):
        with pytest.raises(KeyError) as excinfo:
            get_suite("spec2017")
        message = excinfo.value.args[0]
        assert "spec2017" in message
        assert "spec2000fp_like" in message

    def test_suites_view_tracks_registry(self):
        member = SuiteMember("only", lambda n: daxpy(elements=max(4, n)), 64)
        register_suite(Suite("tmp-view-suite", [member]), description="ephemeral")
        try:
            assert "tmp-view-suite" in SUITES
            assert SUITES["tmp-view-suite"].names() == ["only"]
            assert "tmp-view-suite" in sorted(SUITES)
        finally:
            unregister_suite("tmp-view-suite")
        assert "tmp-view-suite" not in SUITES

    def test_register_suite_as_decorator(self):
        @register_suite(description="factory registered")
        def tmp_factory():
            return Suite(
                "tmp-factory-suite",
                [SuiteMember("only", lambda n: daxpy(elements=max(4, n)), 64)],
            )

        try:
            assert get_suite_spec("tmp-factory-suite").description == "factory registered"
        finally:
            unregister_suite("tmp-factory-suite")

    def test_duplicate_suite_rejected(self):
        member = SuiteMember("only", lambda n: daxpy(elements=max(4, n)), 64)
        register_suite(Suite("tmp-dup-suite", [member]))
        try:
            with pytest.raises(ConfigurationError):
                register_suite(Suite("tmp-dup-suite", [member]))
        finally:
            unregister_suite("tmp-dup-suite")

    def test_factory_with_blank_docstring_registers(self):
        def tmp_blank_factory():
            """   """
            return Suite(
                "tmp-blank-doc-suite",
                [SuiteMember("only", lambda n: daxpy(elements=max(4, n)), 64)],
                description="from the suite",
            )

        register_suite(tmp_blank_factory)
        try:
            assert get_suite_spec("tmp-blank-doc-suite").description == "from the suite"
        finally:
            unregister_suite("tmp-blank-doc-suite")

    def test_factory_must_return_suite(self):
        with pytest.raises(ConfigurationError):
            register_suite(lambda: "not a suite")

    def test_suite_specs_described(self):
        for spec in suite_specs():
            assert spec.suite.name == spec.name
            assert spec.description


class TestScenarioSuites:
    @pytest.mark.parametrize("name", sorted(BUILTIN_SUITES - {"spec2000fp_like", "integer_like"}))
    def test_builds_and_is_deterministic(self, name):
        first = get_suite(name).build(scale=0.1)
        second = get_suite(name).build(scale=0.1)
        assert set(first) == set(second)
        for member in first:
            assert first[member].to_jsonl() == second[member].to_jsonl()

    def test_pointer_chase_is_memory_bound(self):
        traces = get_suite("pointer-chase").build(scale=0.5)
        for trace in traces.values():
            assert trace.load_fraction() > 0.1
        # the warm chain's footprint is bounded by its 128-node pool and
        # fits in the data caches; the cold chain keeps touching new lines
        assert traces["chase_warm"].unique_lines() <= 128
        assert traces["chase_cold"].unique_lines() > 2 * traces["chase_warm"].unique_lines()

    def test_chase_mlp_has_independent_chains(self):
        traces = get_suite("pointer-chase").build(scale=0.1)
        loads = [i for i in traces["chase_mlp"] if i.is_load]
        # round-robin chains: consecutive loads write different registers
        assert loads[0].dest != loads[1].dest

    def test_branch_storm_is_branch_heavy(self):
        traces = get_suite("branch-storm").build(scale=0.1)
        for trace in traces.values():
            assert trace.branch_fraction() >= 0.3

    def test_storm_dense_is_densest(self):
        traces = get_suite("branch-storm").build(scale=0.1)
        assert traces["storm_dense"].branch_fraction() > traces["storm_even"].branch_fraction()

    def test_server_mix_phases_are_labelled(self):
        traces = get_suite("server-mix").build(scale=0.1)
        labels = {instr.label for instr in traces["phased"]}
        assert labels == {"server-mix.parse", "server-mix.lookup", "server-mix.respond"}

    def test_server_mix_interleaved_blends_regimes(self):
        traces = get_suite("server-mix").build(scale=0.1)
        trace = traces["interleaved"]
        labels = {instr.label for instr in trace}
        assert len(labels) >= 3
        # the first couple hundred instructions already mix several kernels
        assert len({instr.label for instr in list(trace)[:200]}) >= 2
