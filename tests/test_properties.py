"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, cooo_config, scaled_baseline
from repro.common.stats import StatsRegistry, WeightedDistribution, percentile
from repro.core.cam_rename import CAMRenamer
from repro.api import run as simulate
from repro.core.regfile import PhysicalRegisterFile
from repro.isa import registers as regs
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import OpClass
from repro.memory.cache import Cache
from repro.trace.trace import Trace
from repro.workloads.builder import TraceBuilder

# Simulation-backed properties are expensive; keep example counts small.
SIM_SETTINGS = settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
FAST_SETTINGS = settings(max_examples=60, deadline=None)


# ---------------------------------------------------------------------------
# Statistics primitives
# ---------------------------------------------------------------------------
@FAST_SETTINGS
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
def test_percentile_is_bounded_by_extremes(values):
    values = sorted(values)
    for fraction in (0.0, 0.25, 0.5, 0.9, 1.0):
        result = percentile(values, fraction)
        assert values[0] <= result <= values[-1]


@FAST_SETTINGS
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=20)),
        min_size=1,
        max_size=60,
    )
)
def test_weighted_distribution_percentiles_are_monotonic(samples):
    dist = WeightedDistribution("x")
    for value, weight in samples:
        dist.sample(value, weight)
    fractions = [0.1, 0.25, 0.5, 0.75, 0.9]
    results = [dist.percentile(f) for f in fractions]
    assert results == sorted(results)
    assert min(v for v, _ in samples) <= dist.mean() <= max(v for v, _ in samples)


# ---------------------------------------------------------------------------
# Trace serialisation round trip
# ---------------------------------------------------------------------------
_instruction_strategy = st.builds(
    lambda op, dest, src, addr, taken: Instruction(
        pc=0x1000,
        op=op,
        dest=None if op in (OpClass.STORE, OpClass.FP_STORE, OpClass.BRANCH, OpClass.NOP) else dest,
        srcs=(src,),
        mem_addr=addr if op in (OpClass.LOAD, OpClass.FP_LOAD, OpClass.STORE, OpClass.FP_STORE) else None,
        branch_taken=taken if op is OpClass.BRANCH else False,
        branch_target=0x100 if (op is OpClass.BRANCH and taken) else None,
    ),
    op=st.sampled_from(
        [OpClass.INT_ALU, OpClass.FP_ALU, OpClass.LOAD, OpClass.FP_LOAD, OpClass.STORE, OpClass.BRANCH]
    ),
    dest=st.integers(min_value=0, max_value=63),
    src=st.integers(min_value=0, max_value=63),
    addr=st.integers(min_value=0, max_value=2**40),
    taken=st.booleans(),
)


@FAST_SETTINGS
@given(st.lists(_instruction_strategy, min_size=1, max_size=40))
def test_trace_jsonl_roundtrip(instructions):
    trace = Trace(instructions, name="prop")
    restored = Trace.from_jsonl(trace.to_jsonl(), name="prop")
    assert list(restored) == list(trace)


# ---------------------------------------------------------------------------
# Cache model vs. a reference LRU implementation
# ---------------------------------------------------------------------------
@FAST_SETTINGS
@given(
    st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=200),
    st.integers(min_value=0, max_value=2**31),
)
def test_cache_matches_reference_lru(line_indices, seed):
    """Access/fill behaviour must match a straightforward LRU model."""
    config = CacheConfig(4 * 2 * 64, 2, 64, 1, name="ref")  # 4 sets, 2 ways
    cache = Cache(config, StatsRegistry())
    reference = {}  # set index -> list of tags, most recent last

    for index in line_indices:
        addr = index * 64
        set_index = index % 4
        tag = index
        lines = reference.setdefault(set_index, [])
        expected_hit = tag in lines
        actual_hit = cache.access(addr)
        assert actual_hit == expected_hit
        if expected_hit:
            lines.remove(tag)
            lines.append(tag)
        else:
            cache.fill(addr)
            if len(lines) == 2:
                lines.pop(0)
            lines.append(tag)


# ---------------------------------------------------------------------------
# Physical register file free-list integrity
# ---------------------------------------------------------------------------
@FAST_SETTINGS
@given(st.lists(st.booleans(), min_size=1, max_size=200), st.integers(0, 2**31))
def test_regfile_never_leaks_or_double_allocates(ops, seed):
    rng = random.Random(seed)
    prf = PhysicalRegisterFile(16, StatsRegistry())
    allocated = []
    for do_allocate in ops:
        if do_allocate and prf.has_free():
            reg = prf.allocate()
            assert reg not in allocated
            allocated.append(reg)
        elif allocated:
            reg = allocated.pop(rng.randrange(len(allocated)))
            prf.free(reg)
        assert prf.free_count + len(allocated) == 16


# ---------------------------------------------------------------------------
# CAM renamer invariants under random rename/checkpoint/rollback sequences
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=9)),
        min_size=1,
        max_size=80,
    )
)
def test_cam_renamer_invariants_hold(operations):
    """Rename continuously, occasionally checkpoint, and roll back at the end."""
    stats = StatsRegistry()
    renamer = CAMRenamer(PhysicalRegisterFile(256, stats), stats)
    snapshots = []
    harvested_sets = []
    seq = 0
    for logical, action in operations:
        if action == 0 and len(snapshots) < 4:
            snapshots.append(renamer.take_snapshot())
            harvested_sets.append(renamer.harvest_future_free())
            continue
        if not renamer.regfile.has_free():
            break
        instr = Instruction(pc=seq, op=OpClass.INT_ALU, dest=logical, srcs=(logical,))
        renamer.rename(DynInst(seq=seq, trace_index=seq, instr=instr))
        seq += 1
    reserved = set().union(*harvested_sets) if harvested_sets else set()
    renamer.check_invariants(reserved=reserved)
    if snapshots:
        # Roll back to the first snapshot: registers harvested before it do
        # not exist (it is the oldest), so nothing is reserved.
        renamer.restore(snapshots[0], reserved=harvested_sets[0] if harvested_sets else set())
        renamer.check_invariants(reserved=harvested_sets[0] if harvested_sets else set())


# ---------------------------------------------------------------------------
# End-to-end: random small traces complete on both machines
# ---------------------------------------------------------------------------
def _random_trace(seed: int, length: int) -> Trace:
    rng = random.Random(seed)
    builder = TraceBuilder(f"random-{seed}")
    int_regs = [regs.int_reg(i) for i in range(1, 8)]
    fp_regs = [regs.fp_reg(i) for i in range(1, 8)]
    for i in range(length):
        choice = rng.random()
        if choice < 0.25:
            builder.load(rng.choice(fp_regs), 0x1000_0000 + rng.randrange(1 << 14) * 8)
        elif choice < 0.35:
            builder.store(0x2000_0000 + rng.randrange(1 << 12) * 8, rng.choice(fp_regs))
        elif choice < 0.55:
            builder.fp_add(rng.choice(fp_regs), rng.choice(fp_regs), rng.choice(fp_regs))
        elif choice < 0.70:
            builder.fp_mul(rng.choice(fp_regs), rng.choice(fp_regs), rng.choice(fp_regs))
        elif choice < 0.85:
            builder.int_op(rng.choice(int_regs), rng.choice(int_regs))
        elif choice < 0.95:
            builder.branch(taken=rng.random() < 0.7, srcs=(rng.choice(int_regs),))
        else:
            builder.int_mul(rng.choice(int_regs), rng.choice(int_regs), rng.choice(int_regs))
    builder.branch(taken=False)
    return builder.build()


@SIM_SETTINGS
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=20, max_value=150))
def test_baseline_commits_any_random_trace(seed, length):
    trace = _random_trace(seed, length)
    result = simulate(scaled_baseline(window=48, memory_latency=80), trace)
    assert result.committed_instructions == len(trace)
    assert 0 < result.ipc <= 4.0


@SIM_SETTINGS
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=20, max_value=150))
def test_cooo_commits_any_random_trace(seed, length):
    trace = _random_trace(seed, length)
    config = cooo_config(iq_size=12, sliq_size=48, checkpoints=3, memory_latency=80)
    result = simulate(config, trace)
    assert result.committed_instructions == len(trace)
    assert 0 < result.ipc <= 4.0


@SIM_SETTINGS
@given(st.integers(min_value=0, max_value=5_000))
def test_both_machines_commit_same_instruction_count(seed):
    trace = _random_trace(seed, 100)
    baseline = simulate(scaled_baseline(window=64, memory_latency=60), trace)
    cooo = simulate(cooo_config(iq_size=16, sliq_size=64, memory_latency=60), trace)
    assert baseline.committed_instructions == cooo.committed_instructions == len(trace)


# ---------------------------------------------------------------------------
# Workload registry: determinism, monotone scaling, save/load fidelity
# ---------------------------------------------------------------------------
from repro.workloads.registry import get_suite, workload_specs  # noqa: E402

# Trace generation is cheap but 13 workloads x examples adds up; a
# handful of scales per workload already exercises the size mapping.
BUILD_SETTINGS = settings(max_examples=6, deadline=None)


@pytest.mark.parametrize("spec", workload_specs(), ids=lambda spec: spec.name)
@BUILD_SETTINGS
@given(scale=st.floats(min_value=0.05, max_value=0.5))
def test_registered_workloads_are_deterministic(spec, scale):
    first = spec.build(scale=scale)
    second = spec.build(scale=scale)
    assert first.to_jsonl() == second.to_jsonl()


@pytest.mark.parametrize("spec", workload_specs(), ids=lambda spec: spec.name)
@BUILD_SETTINGS
@given(
    small=st.floats(min_value=0.05, max_value=0.5),
    growth=st.floats(min_value=1.0, max_value=4.0),
)
def test_registered_workloads_scale_monotonically(spec, small, growth):
    assert len(spec.build(scale=small)) <= len(spec.build(scale=small * growth))


@pytest.mark.parametrize(
    "suite_name", ["pointer-chase", "branch-storm", "server-mix", "spec2000fp_like"]
)
def test_suite_scale_grows_every_member(suite_name):
    suite = get_suite(suite_name)
    small = suite.build(scale=0.1)
    large = suite.build(scale=0.4)
    assert all(len(small[name]) <= len(large[name]) for name in small)


@SIM_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    length=st.integers(min_value=20, max_value=120),
)
def test_save_load_simulate_is_bit_identical(tmp_path_factory, seed, length):
    from repro.trace.io import load_trace, save_trace

    trace = _random_trace(seed, length)
    path = tmp_path_factory.mktemp("traces") / f"t{seed}_{length}.trace.gz"
    save_trace(trace, path)
    config = cooo_config(iq_size=12, sliq_size=48, checkpoints=3, memory_latency=80)
    fresh = simulate(config, trace)
    replayed = simulate(config, load_trace(path))
    assert replayed.to_dict() == fresh.to_dict()
