"""Tests for both renaming schemes: the baseline map table and the paper's CAM."""

import pytest

from repro.common.errors import RenameError
from repro.core.cam_rename import CAMRenamer
from repro.core.regfile import PhysicalRegisterFile
from repro.core.rename_map import MapTableRenamer
from repro.isa import registers as regs
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import OpClass


def dyn(seq, op=OpClass.INT_ALU, dest=None, srcs=(), mem_addr=None):
    instr = Instruction(pc=seq * 4, op=op, dest=dest, srcs=tuple(srcs), mem_addr=mem_addr)
    return DynInst(seq=seq, trace_index=seq, instr=instr)


class TestMapTableRenamer:
    def make(self, stats, regs_count=80):
        return MapTableRenamer(PhysicalRegisterFile(regs_count, stats), stats)

    def test_initial_mapping_is_ready(self, stats):
        renamer = self.make(stats)
        for logical in range(regs.NUM_LOGICAL_REGS):
            assert renamer.regfile.is_ready(renamer.mapping(logical))

    def test_requires_enough_registers(self, stats):
        with pytest.raises(RenameError):
            MapTableRenamer(PhysicalRegisterFile(10, stats), stats)

    def test_rename_reads_current_mapping(self, stats):
        renamer = self.make(stats)
        expected = renamer.mapping(2)
        inst = dyn(1, dest=1, srcs=(2,))
        srcs, dest, old = renamer.rename(inst)
        assert srcs == [expected]
        assert dest == renamer.mapping(1)
        assert old != dest

    def test_dependent_chain_renames_through(self, stats):
        renamer = self.make(stats)
        producer = dyn(1, dest=5)
        renamer.rename(producer)
        consumer = dyn(2, dest=6, srcs=(5,))
        srcs, _, _ = renamer.rename(consumer)
        assert srcs == [producer.phys_dest]

    def test_release_on_commit_frees_old_mapping(self, stats):
        renamer = self.make(stats)
        inst = dyn(1, dest=3)
        renamer.rename(inst)
        free_before = renamer.regfile.free_count
        renamer.release_on_commit(inst)
        assert renamer.regfile.free_count == free_before + 1
        assert renamer.regfile.is_free(inst.old_phys_dest)

    def test_undo_rename_restores_mapping(self, stats):
        renamer = self.make(stats)
        before = renamer.mapping(3)
        inst = dyn(1, dest=3)
        renamer.rename(inst)
        renamer.undo_rename(inst)
        assert renamer.mapping(3) == before
        assert renamer.regfile.is_free(inst.phys_dest)

    def test_undo_must_be_in_reverse_order(self, stats):
        renamer = self.make(stats)
        first = dyn(1, dest=3)
        second = dyn(2, dest=3)
        renamer.rename(first)
        renamer.rename(second)
        with pytest.raises(RenameError):
            renamer.undo_rename(first)

    def test_can_rename_checks_free_registers(self, stats):
        renamer = self.make(stats, regs_count=regs.NUM_LOGICAL_REGS + 1)
        first = dyn(1, dest=1)
        assert renamer.can_rename(first)
        renamer.rename(first)
        assert not renamer.can_rename(dyn(2, dest=2))
        assert renamer.can_rename(dyn(3, op=OpClass.BRANCH))  # no destination

    def test_store_needs_no_destination(self, stats):
        renamer = self.make(stats)
        store = dyn(1, op=OpClass.STORE, srcs=(1,), mem_addr=0x100)
        srcs, dest, old = renamer.rename(store)
        assert dest is None and old is None
        assert len(srcs) == 1


class TestCAMRenamer:
    def make(self, stats, regs_count=96):
        return CAMRenamer(PhysicalRegisterFile(regs_count, stats), stats)

    def test_initial_valid_bits(self, stats):
        renamer = self.make(stats)
        assert sum(renamer.valid_bits()) == regs.NUM_LOGICAL_REGS
        assert not any(renamer.future_free_bits())
        renamer.check_invariants()

    def test_rename_sets_future_free_on_displaced_register(self, stats):
        """The Figure 4 scenario: a redefinition marks the old register Future Free."""
        renamer = self.make(stats)
        old = renamer.mapping(1)
        inst = dyn(1, dest=1, srcs=(2, 3))
        renamer.rename(inst)
        assert renamer.valid_bits()[old] is False
        assert renamer.future_free_bits()[old] is True
        assert renamer.valid_bits()[inst.phys_dest] is True
        assert renamer.logical_of(inst.phys_dest) == 1
        renamer.check_invariants()

    def test_double_redefinition_marks_both(self, stats):
        """Figure 5: two mappings of the same logical register awaiting free."""
        renamer = self.make(stats)
        first_old = renamer.mapping(1)
        first = dyn(1, dest=1)
        renamer.rename(first)
        second = dyn(2, dest=1, srcs=(4, 1))
        renamer.rename(second)
        bits = renamer.future_free_bits()
        assert bits[first_old] and bits[first.phys_dest]
        assert renamer.mapping(1) == second.phys_dest
        renamer.check_invariants(reserved=set())

    def test_snapshot_and_harvest(self, stats):
        """Figure 6: taking a checkpoint stores Valid bits and clears Future Free."""
        renamer = self.make(stats)
        old = renamer.mapping(4)
        renamer.rename(dyn(1, dest=4))
        snapshot = renamer.take_snapshot()
        harvested = renamer.harvest_future_free()
        assert harvested == {old}
        assert not any(renamer.future_free_bits())
        assert snapshot.valid[renamer.mapping(4)] is True
        assert snapshot.valid[old] is False

    def test_checkpoint_cost_is_two_bitmaps(self, stats):
        renamer = self.make(stats)
        snapshot = renamer.take_snapshot()
        assert len(snapshot.valid) == renamer.regfile.num_regs
        assert len(snapshot.mapping) == regs.NUM_LOGICAL_REGS

    def test_free_registers_at_commit(self, stats):
        renamer = self.make(stats)
        old = renamer.mapping(2)
        renamer.rename(dyn(1, dest=2))
        renamer.take_snapshot()
        harvested = renamer.harvest_future_free()
        free_before = renamer.regfile.free_count
        renamer.free_registers(harvested)
        assert renamer.regfile.free_count == free_before + 1
        assert renamer.regfile.is_free(old)

    def test_cannot_free_valid_register(self, stats):
        renamer = self.make(stats)
        with pytest.raises(RenameError):
            renamer.free_registers({renamer.mapping(0)})

    def test_restore_rolls_back_mapping_and_free_list(self, stats):
        renamer = self.make(stats)
        snapshot = renamer.take_snapshot()
        free_before = renamer.regfile.free_count
        squashed = [dyn(i, dest=i % 8) for i in range(1, 9)]
        for inst in squashed:
            renamer.rename(inst)
        renamer.restore(snapshot, reserved=set())
        assert renamer.regfile.free_count == free_before
        for logical in range(8):
            assert renamer.mapping(logical) == snapshot.mapping[logical]
        renamer.check_invariants()

    def test_restore_keeps_reserved_registers_off_free_list(self, stats):
        renamer = self.make(stats)
        old = renamer.mapping(1)
        renamer.rename(dyn(1, dest=1))
        snapshot = renamer.take_snapshot()
        harvested = renamer.harvest_future_free()
        assert harvested == {old}
        renamer.rename(dyn(2, dest=2))
        renamer.restore(snapshot, reserved=harvested)
        assert not renamer.regfile.is_free(old)
        renamer.check_invariants(reserved=harvested)

    def test_restore_preserves_not_ready_producers(self, stats):
        renamer = self.make(stats)
        producer = dyn(1, dest=1)
        renamer.rename(producer)
        # The producer has not written back: its register is not ready.
        snapshot = renamer.take_snapshot()
        renamer.rename(dyn(2, dest=2))
        renamer.restore(snapshot, reserved=set())
        assert not renamer.regfile.is_ready(producer.phys_dest)

    def test_undo_rename_reverses_figure4(self, stats):
        renamer = self.make(stats)
        old = renamer.mapping(1)
        inst = dyn(1, dest=1)
        renamer.rename(inst)
        renamer.undo_rename(inst)
        assert renamer.mapping(1) == old
        assert renamer.valid_bits()[old] is True
        assert not renamer.future_free_bits()[old]
        assert renamer.regfile.is_free(inst.phys_dest)
        renamer.check_invariants()

    def test_undo_out_of_order_rejected(self, stats):
        renamer = self.make(stats)
        first = dyn(1, dest=1)
        second = dyn(2, dest=1)
        renamer.rename(first)
        renamer.rename(second)
        with pytest.raises(RenameError):
            renamer.undo_rename(first)

    def test_rename_without_destination_changes_nothing(self, stats):
        renamer = self.make(stats)
        valid_before = renamer.valid_bits()
        renamer.rename(dyn(1, op=OpClass.BRANCH, srcs=(1,)))
        assert renamer.valid_bits() == valid_before

    def test_requires_enough_registers(self, stats):
        with pytest.raises(RenameError):
            CAMRenamer(PhysicalRegisterFile(32, stats), stats)
