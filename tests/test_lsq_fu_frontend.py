"""Tests for the load/store queue, functional units and the fetch unit."""

import pytest

from repro.common.config import BranchConfig, FunctionalUnitConfig, MemoryConfig
from repro.common.errors import StructuralHazardError
from repro.core.frontend import FetchUnit
from repro.core.fu import ExecutionUnits, FunctionalUnitPool
from repro.core.lsq import LoadStoreQueue
from repro.isa import registers as regs
from repro.isa.instruction import DynInst, Instruction
from repro.isa.opcodes import FUType, OpClass
from repro.memory.hierarchy import CacheHierarchy
from repro.workloads.builder import TraceBuilder


def mem_inst(seq, op, addr):
    dest = regs.fp_reg(1) if op in (OpClass.LOAD, OpClass.FP_LOAD) else None
    srcs = (regs.fp_reg(2),) if op in (OpClass.STORE, OpClass.FP_STORE) else ()
    instr = Instruction(pc=seq * 4, op=op, dest=dest, srcs=srcs, mem_addr=addr)
    return DynInst(seq=seq, trace_index=seq, instr=instr)


class TestLoadStoreQueue:
    def test_allocate_and_release(self, stats):
        lsq = LoadStoreQueue(4, stats)
        load = mem_inst(1, OpClass.LOAD, 0x100)
        lsq.allocate(load)
        assert lsq.occupancy == 1
        lsq.release(load)
        assert lsq.occupancy == 0

    def test_only_memory_instructions(self, stats):
        lsq = LoadStoreQueue(4, stats)
        alu = DynInst(seq=1, trace_index=1, instr=Instruction(pc=0, op=OpClass.INT_ALU, dest=1))
        with pytest.raises(StructuralHazardError):
            lsq.allocate(alu)

    def test_capacity(self, stats):
        lsq = LoadStoreQueue(1, stats)
        lsq.allocate(mem_inst(1, OpClass.LOAD, 0x100))
        assert lsq.is_full
        with pytest.raises(StructuralHazardError):
            lsq.allocate(mem_inst(2, OpClass.LOAD, 0x108))

    def test_store_to_load_forwarding(self, stats):
        lsq = LoadStoreQueue(8, stats)
        store = mem_inst(1, OpClass.STORE, 0x100)
        lsq.allocate(store)
        load = mem_inst(2, OpClass.LOAD, 0x100)
        lsq.allocate(load)
        assert lsq.forwarding_store(load) is store

    def test_no_forwarding_from_younger_store(self, stats):
        lsq = LoadStoreQueue(8, stats)
        load = mem_inst(1, OpClass.LOAD, 0x100)
        store = mem_inst(2, OpClass.STORE, 0x100)
        lsq.allocate(load)
        lsq.allocate(store)
        assert lsq.forwarding_store(load) is None

    def test_no_forwarding_across_words(self, stats):
        lsq = LoadStoreQueue(8, stats)
        store = mem_inst(1, OpClass.STORE, 0x100)
        lsq.allocate(store)
        load = mem_inst(2, OpClass.LOAD, 0x108)
        lsq.allocate(load)
        assert lsq.forwarding_store(load) is None

    def test_forwarding_picks_youngest_older_store(self, stats):
        lsq = LoadStoreQueue(8, stats)
        old_store = mem_inst(1, OpClass.STORE, 0x100)
        new_store = mem_inst(2, OpClass.STORE, 0x100)
        lsq.allocate(old_store)
        lsq.allocate(new_store)
        load = mem_inst(3, OpClass.LOAD, 0x100)
        lsq.allocate(load)
        assert lsq.forwarding_store(load) is new_store

    def test_released_store_stops_forwarding(self, stats):
        lsq = LoadStoreQueue(8, stats)
        store = mem_inst(1, OpClass.STORE, 0x100)
        lsq.allocate(store)
        lsq.release(store)
        load = mem_inst(2, OpClass.LOAD, 0x100)
        lsq.allocate(load)
        assert lsq.forwarding_store(load) is None

    def test_remove_squashed(self, stats):
        lsq = LoadStoreQueue(8, stats)
        store = mem_inst(1, OpClass.STORE, 0x100)
        lsq.allocate(store)
        store.mark_squashed()
        lsq.remove_squashed([store])
        assert lsq.occupancy == 0

    def test_double_release_is_harmless(self, stats):
        lsq = LoadStoreQueue(8, stats)
        load = mem_inst(1, OpClass.LOAD, 0x100)
        lsq.allocate(load)
        lsq.release(load)
        lsq.release(load)
        assert lsq.occupancy == 0


class TestFunctionalUnits:
    def test_pool_limits_issues_per_cycle(self, stats):
        pool = FunctionalUnitPool("alu", 2, stats)
        assert pool.try_issue(cycle=1, occupancy_cycles=1)
        assert pool.try_issue(cycle=1, occupancy_cycles=1)
        assert not pool.try_issue(cycle=1, occupancy_cycles=1)
        assert pool.try_issue(cycle=2, occupancy_cycles=1)

    def test_unpipelined_occupancy(self, stats):
        pool = FunctionalUnitPool("div", 1, stats)
        assert pool.try_issue(cycle=1, occupancy_cycles=20)
        assert not pool.try_issue(cycle=10, occupancy_cycles=20)
        assert pool.try_issue(cycle=21, occupancy_cycles=20)

    def test_execution_units_mapping(self, stats):
        units = ExecutionUnits(FunctionalUnitConfig(), memory_ports=2, stats=stats)
        assert units.pool_for(OpClass.FP_MUL) is FUType.FP
        assert units.pool_for(OpClass.LOAD) is FUType.MEM_PORT
        assert units.latency(OpClass.FP_ALU) == 2

    def test_memory_ports_limit_loads(self, stats):
        units = ExecutionUnits(FunctionalUnitConfig(), memory_ports=2, stats=stats)
        assert units.try_issue(OpClass.LOAD, cycle=5)
        assert units.try_issue(OpClass.FP_LOAD, cycle=5)
        assert not units.try_issue(OpClass.STORE, cycle=5)

    def test_divider_blocks_multiplier_pool(self, stats):
        units = ExecutionUnits(FunctionalUnitConfig(int_mul_count=1), memory_ports=2, stats=stats)
        assert units.try_issue(OpClass.INT_DIV, cycle=0)
        assert not units.try_issue(OpClass.INT_MUL, cycle=5)
        assert units.try_issue(OpClass.INT_MUL, cycle=25)

    def test_nop_always_issues(self, stats):
        units = ExecutionUnits(FunctionalUnitConfig(), memory_ports=1, stats=stats)
        assert units.try_issue(OpClass.NOP, cycle=0)


class TestFetchUnit:
    def make(self, trace, stats, fetch_width=4, perfect=False):
        hierarchy = CacheHierarchy(MemoryConfig(memory_latency=100), stats)
        config = BranchConfig(perfect=perfect)
        return FetchUnit(trace, config, hierarchy, stats, fetch_width)

    def straight_line_trace(self, n=12):
        builder = TraceBuilder("line")
        for _ in range(n):
            builder.int_op(regs.int_reg(1), regs.int_reg(2))
        builder.branch(taken=False)
        return builder.build()

    def test_fetches_up_to_width(self, stats):
        frontend = self.make(self.straight_line_trace(), stats)
        block = frontend.fetch_block(cycle=1)
        assert len(block) == 4
        assert [f.trace_index for f in block] == [0, 1, 2, 3]

    def test_block_ends_at_taken_branch(self, stats):
        builder = TraceBuilder("loop")
        builder.int_op(regs.int_reg(1))
        builder.branch(taken=True, target=0x1000)
        builder.int_op(regs.int_reg(2))
        builder.branch(taken=False)
        frontend = self.make(builder.build(), stats, perfect=True)
        block = frontend.fetch_block(cycle=1)
        assert len(block) == 2
        assert block[-1].instr.is_branch

    def test_exhaustion(self, stats):
        frontend = self.make(self.straight_line_trace(3), stats)
        frontend.fetch_block(cycle=1)
        assert frontend.exhausted
        assert frontend.fetch_block(cycle=2) == []

    def test_first_taken_branch_btb_miss_is_mispredicted(self, stats):
        builder = TraceBuilder("loop")
        builder.branch(taken=True, target=0x1000)
        builder.branch(taken=False)
        frontend = self.make(builder.build(), stats)
        block = frontend.fetch_block(cycle=1)
        assert block[0].mispredicted

    def test_perfect_predictor_never_mispredicts(self, stats):
        builder = TraceBuilder("loop")
        for i in range(8):
            builder.branch(taken=(i % 2 == 0), target=0x1000)
        frontend = self.make(builder.build(), stats, perfect=True)
        fetched = []
        cycle = 0
        while not frontend.exhausted:
            cycle += 1
            fetched.extend(frontend.fetch_block(cycle))
        assert not any(f.mispredicted for f in fetched)

    def test_redirect_rewinds_and_delays(self, stats):
        frontend = self.make(self.straight_line_trace(), stats)
        frontend.fetch_block(cycle=1)
        frontend.redirect(trace_index=0, resume_cycle=200)
        assert frontend.fetch_block(cycle=150) == []
        block = frontend.fetch_block(cycle=200)
        assert block[0].trace_index == 0

    def test_icache_warmup_delay(self, stats):
        frontend = self.make(self.straight_line_trace(), stats)
        frontend.fetch_block(cycle=1)
        # first access missed the IL1, so fetch is delayed past cycle 2
        assert not frontend.can_fetch(2)

    def test_mispredicted_branch_does_not_stop_fetch(self, stats):
        builder = TraceBuilder("b")
        builder.branch(taken=False)  # gshare initialised weakly-taken: not-taken branch mispredicts? depends
        for _ in range(6):
            builder.int_op(regs.int_reg(1))
        builder.branch(taken=False)
        frontend = self.make(builder.build(), stats)
        block = frontend.fetch_block(cycle=1)
        # whatever the prediction, the block is not cut short by a not-taken branch
        assert len(block) == 4
