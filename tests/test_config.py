"""Tests for the configuration objects and presets."""

import dataclasses

import pytest

from repro.common.config import (
    BranchConfig,
    CacheConfig,
    CheckpointConfig,
    CoreConfig,
    FunctionalUnitConfig,
    MemoryConfig,
    ProcessorConfig,
    RegisterAllocationConfig,
    SLIQConfig,
    cooo_config,
    scaled_baseline,
    table1_baseline,
)
from repro.common.errors import ConfigurationError


class TestCacheConfig:
    def test_valid_table1_l2(self):
        cache = CacheConfig(512 * 1024, 4, 64, 10, name="l2")
        cache.validate()
        assert cache.num_sets == 2048

    def test_num_sets_computation(self):
        cache = CacheConfig(32 * 1024, 4, 32, 2)
        assert cache.num_sets == 256

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(32 * 1024, 4, 48, 2).validate()

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 4, 32, 2).validate()

    def test_rejects_size_not_multiple_of_way_size(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(10_000, 4, 32, 2).validate()

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(32 * 1024, 4, 32, -1).validate()


class TestMemoryConfig:
    def test_defaults_match_table1(self):
        memory = MemoryConfig()
        memory.validate()
        assert memory.il1.size_bytes == 32 * 1024
        assert memory.dl1.latency == 2
        assert memory.l2.size_bytes == 512 * 1024
        assert memory.memory_latency == 1000
        assert memory.memory_ports == 2

    def test_rejects_zero_ports(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(memory_ports=0).validate()

    def test_perfect_l2_flag(self):
        memory = MemoryConfig(perfect_l2=True)
        memory.validate()
        assert memory.perfect_l2


class TestBranchConfig:
    def test_defaults_match_table1(self):
        branch = BranchConfig()
        branch.validate()
        assert branch.history_entries == 16 * 1024
        assert branch.penalty == 10

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            BranchConfig(kind="perceptron").validate()

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ConfigurationError):
            BranchConfig(history_entries=1000).validate()


class TestFunctionalUnitConfig:
    def test_defaults_match_table1(self):
        fu = FunctionalUnitConfig()
        fu.validate()
        assert fu.int_alu_count == 4
        assert fu.int_mul_count == 2
        assert fu.fp_count == 4
        assert fu.int_div_latency == 20

    def test_rejects_zero_units(self):
        with pytest.raises(ConfigurationError):
            FunctionalUnitConfig(fp_count=0).validate()


class TestCheckpointConfig:
    def test_paper_defaults(self):
        checkpoint = CheckpointConfig()
        checkpoint.validate()
        assert checkpoint.table_size == 8
        assert checkpoint.branch_threshold == 64
        assert checkpoint.instruction_threshold == 512
        assert checkpoint.store_threshold == 64

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(policy="random").validate()

    def test_rejects_instruction_threshold_below_branch_threshold(self):
        with pytest.raises(ConfigurationError):
            CheckpointConfig(branch_threshold=64, instruction_threshold=32).validate()


class TestSLIQConfig:
    def test_defaults(self):
        sliq = SLIQConfig()
        sliq.validate()
        assert sliq.reinsert_width == 4
        assert sliq.reinsert_delay == 4

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            SLIQConfig(size=0).validate()

    def test_zero_delay_allowed(self):
        SLIQConfig(reinsert_delay=0).validate()


class TestProcessorConfig:
    def test_default_is_valid_baseline(self):
        config = ProcessorConfig()
        assert config.validate() is config
        assert config.mode == "baseline"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(mode="vliw").validate()

    def test_rejects_late_allocation_on_baseline(self):
        config = ProcessorConfig(
            mode="baseline",
            regalloc=RegisterAllocationConfig(late_allocation=True),
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_describe_is_flat(self):
        description = table1_baseline().describe()
        assert description["mode"] == "baseline"
        assert description["rob_size"] == 4096
        assert description["memory_latency"] == 1000

    def test_copy_is_deep(self):
        config = table1_baseline()
        clone = config.copy(name="clone")
        clone.memory.memory_latency = 7
        assert config.memory.memory_latency == 1000
        assert clone.name == "clone"


class TestPresets:
    def test_table1_baseline_matches_paper(self):
        config = table1_baseline()
        assert config.core.rob_size == 4096
        assert config.core.int_queue_size == 4096
        assert config.core.lsq_size == 4096
        assert config.core.physical_registers == 4096
        assert config.memory.memory_latency == 1000

    def test_table1_perfect_l2(self):
        config = table1_baseline(perfect_l2=True)
        assert config.memory.perfect_l2

    def test_scaled_baseline_scales_window_resources(self):
        config = scaled_baseline(window=256, memory_latency=500)
        assert config.core.rob_size == 256
        assert config.core.int_queue_size == 256
        assert config.core.fp_queue_size == 256
        assert config.core.lsq_size == 256
        assert config.memory.memory_latency == 500

    def test_scaled_baseline_keeps_architectural_registers(self):
        config = scaled_baseline(window=128)
        assert config.core.physical_registers == 128 + 64

    def test_scaled_baseline_rejects_zero_window(self):
        with pytest.raises(ConfigurationError):
            scaled_baseline(window=0)

    def test_cooo_config_paper_point(self):
        config = cooo_config(iq_size=128, sliq_size=2048, checkpoints=8)
        assert config.mode == "cooo"
        assert config.sliq.size == 2048
        assert config.sliq.pseudo_rob_size == 128
        assert config.checkpoint.table_size == 8
        assert config.core.int_queue_size == 128

    def test_cooo_config_late_allocation(self):
        config = cooo_config(virtual_tags=512, physical_registers=256, late_allocation=True)
        assert config.regalloc.late_allocation
        assert config.regalloc.virtual_tags == 512
        assert config.core.physical_registers == 256

    def test_cooo_config_custom_pseudo_rob(self):
        config = cooo_config(iq_size=64, pseudo_rob_size=32)
        assert config.sliq.pseudo_rob_size == 32

    def test_configs_are_independent(self):
        first = cooo_config(iq_size=32)
        second = cooo_config(iq_size=128)
        assert first.core.int_queue_size == 32
        assert second.core.int_queue_size == 128
        assert dataclasses.asdict(first) != dataclasses.asdict(second)
