"""Tests for the experiment harness (figure reproductions at tiny scale).

These tests run every figure's code path with a very small suite scale and
reduced parameter grids, checking structure and the paper's qualitative
shape where it is robust even at tiny scale.
"""

import pytest

from repro.experiments import (
    available_experiments,
    run_checkpoint_policy_ablation,
    run_experiment,
    run_figure01,
    run_figure07,
    run_figure09,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_figure14,
    suite_traces,
)
from repro.experiments.runner import ExperimentResult, run_config, suite_ipc
from repro.common.config import scaled_baseline

#: Tiny scale and a reduced workload list keep each figure under ~10 s.
SCALE = 0.12
WORKLOADS = ("daxpy", "gather", "reduction", "fp_compute")


class TestRunnerInfrastructure:
    def test_suite_traces_cached(self):
        first = suite_traces(SCALE)
        second = suite_traces(SCALE)
        assert first is second

    def test_suite_traces_workload_filter(self):
        traces = suite_traces(SCALE, workloads=("daxpy",))
        assert set(traces) == {"daxpy"}

    def test_run_config_and_suite_ipc(self):
        traces = suite_traces(SCALE, workloads=("daxpy",))
        results = run_config(scaled_baseline(window=64, memory_latency=100), traces)
        assert set(results) == {"daxpy"}
        assert suite_ipc(results) > 0

    def test_experiment_result_helpers(self):
        experiment = ExperimentResult("x", "demo")
        experiment.row(a=1, b=2.0)
        experiment.row(a=3, b=4.0)
        assert experiment.value("b", a=3) == 4.0
        assert experiment.column("a") == [1.0, 3.0]
        assert experiment.find_row(a=99) is None
        with pytest.raises(KeyError):
            experiment.value("b", a=99)
        assert "demo" in experiment.report()

    def test_registry_lists_all_figures(self):
        names = available_experiments()
        for figure in ("figure01", "figure07", "figure09", "figure10", "figure11",
                       "figure12", "figure13", "figure14"):
            assert figure in names

    def test_registry_rejects_unknown(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")


class TestFigure01:
    def test_shape(self):
        experiment = run_figure01(
            scale=SCALE, windows=(64, 512), latencies=("perfect", 500), workloads=WORKLOADS
        )
        assert len(experiment.rows) == 4
        perfect_small = experiment.value("ipc", window=64, latency="perfect")
        slow_small = experiment.value("ipc", window=64, latency="500")
        slow_large = experiment.value("ipc", window=512, latency="500")
        # Memory latency hurts the small window, a larger window recovers.
        assert perfect_small > slow_small
        assert slow_large > slow_small


class TestFigure07:
    def test_live_fraction_is_small(self):
        experiment = run_figure07(scale=SCALE, window=512, memory_latency=500, workloads=WORKLOADS)
        mean_row = experiment.find_row(percentile="mean")
        assert mean_row is not None
        assert mean_row["live"] < mean_row["in_flight"]
        assert mean_row["live_fraction"] < 0.7
        assert experiment.per_workload


class TestFigure09:
    def test_ordering(self):
        experiment = run_figure09(
            scale=SCALE, grid=((16, 128), (64, 512)), workloads=WORKLOADS, memory_latency=500
        )
        base128 = experiment.value("ipc", config="baseline-128")
        limit = experiment.value("ipc", config="baseline-4096")
        small = experiment.value("ipc", config="COoO-16/SLIQ-128")
        large = experiment.value("ipc", config="COoO-64/SLIQ-512")
        assert limit > base128
        assert large >= small
        assert large > base128
        assert large <= limit * 1.05


class TestFigure10:
    def test_delay_insensitivity(self):
        experiment = run_figure10(
            scale=SCALE, iq_sizes=(32,), delays=(1, 12), workloads=WORKLOADS, memory_latency=500
        )
        fast = experiment.value("ipc", iq=32, delay=1)
        slow = experiment.value("ipc", iq=32, delay=12)
        assert slow >= fast * 0.8


class TestFigure11:
    def test_cooo_window_exceeds_baseline128(self):
        experiment = run_figure11(
            scale=SCALE, grid=((64, 512),), workloads=WORKLOADS, memory_latency=500
        )
        base128 = experiment.value("in_flight", config="baseline-128")
        cooo = experiment.value("in_flight", config="COoO-64/SLIQ-512")
        assert cooo > base128
        assert base128 <= 128


class TestFigure12:
    def test_breakdown_structure(self):
        experiment = run_figure12(
            scale=SCALE, grid=((32, 256),), workloads=WORKLOADS, memory_latency=500
        )
        row = experiment.rows[0]
        categories = ("moved", "finished", "short_latency", "finished_load",
                      "long_latency_load", "store")
        total = sum(row[c] for c in categories)
        assert total == pytest.approx(100.0, abs=1.0)
        assert row["long_latency_load"] > 0
        assert row["moved"] > 0


class TestFigure13:
    def test_checkpoint_sensitivity(self):
        experiment = run_figure13(
            scale=SCALE, checkpoints=(2, 16), workloads=WORKLOADS, memory_latency=500
        )
        limit = experiment.value("ipc", config="limit-4096")
        few = experiment.value("ipc", config="COoO-2ckpt")
        many = experiment.value("ipc", config="COoO-16ckpt")
        assert many >= few
        assert many <= limit * 1.05


class TestFigure14:
    def test_combined_points_sit_between_reference_lines(self):
        experiment = run_figure14(
            scale=SCALE,
            latencies=(500,),
            virtual_tags=(256, 1024),
            physical_registers=(512,),
            workloads=WORKLOADS,
        )
        base = experiment.value("ipc", latency=500, config="baseline-128")
        limit = experiment.value("ipc", latency=500, config="limit-4096")
        few_tags = experiment.value("ipc", latency=500, config="COoO-vt256-p512")
        many_tags = experiment.value("ipc", latency=500, config="COoO-vt1024-p512")
        assert base <= few_tags * 1.05
        assert many_tags >= few_tags
        assert many_tags <= limit * 1.05


class TestAblation:
    def test_all_policies_run(self):
        experiment = run_checkpoint_policy_ablation(
            scale=SCALE, workloads=WORKLOADS, memory_latency=300
        )
        assert {row["policy"] for row in experiment.rows} == {
            "paper", "every_n", "branch_only", "store_only"
        }
        assert all(row["ipc"] > 0 for row in experiment.rows)
        assert all(row["checkpoints_created"] > 0 for row in experiment.rows)
