"""Tests for the opt-in telemetry layer (metrics, tracer, probes, CLI).

The two load-bearing guarantees:

* **Zero observable effect** — simulation results with a telemetry
  session attached are bit-identical to results without one, and the
  skip-aware probes never force the event-driven kernel per-cycle.
* **Exact accounting** — the CPI stall attribution sums to the run's
  total cycles exactly (on both shipped machines, under both kernels),
  and deterministic-clock exports are byte-identical across runs.
"""

import json

import pytest

from repro import api
from repro.cli import main
from repro.common.config import SamplingPlan, cooo_config, scaled_baseline
from repro.telemetry import (
    CATEGORIES,
    ManualClock,
    MetricsRegistry,
    StallAttributionProbe,
    TelemetrySession,
    TickClock,
    TimelineProbe,
    Tracer,
    chrome_trace_json,
    render_stall_table,
    render_timeline,
    resolve_level,
    setup_cli_logging,
    validate_chrome_trace,
)
from repro.workloads import dense_branches, numerical

BASELINE = scaled_baseline(window=64, memory_latency=100)
COOO = cooo_config(iq_size=32, sliq_size=512, memory_latency=100)


def small_trace():
    return numerical.daxpy(elements=150)


def branchy_trace():
    return dense_branches(iterations=300)


# ---------------------------------------------------------------------------
# Clocks and metrics
# ---------------------------------------------------------------------------


class TestClocks:
    def test_tick_clock_is_deterministic(self):
        a, b = TickClock(), TickClock()
        assert [a.now() for _ in range(4)] == [b.now() for _ in range(4)]

    def test_tick_clock_rejects_non_positive_tick(self):
        with pytest.raises(ValueError):
            TickClock(tick=0)

    def test_manual_clock_advances_explicitly(self):
        clock = ManualClock(10.0)
        assert clock.now() == 10.0
        clock.advance(2.5)
        assert clock.now() == 12.5


class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("cells").add(3)
        registry.counter("cells").add(2)
        registry.gauge("util").set(0.75)
        data = registry.to_dict()
        assert data["cells"]["value"] == 5
        assert data["util"]["value"] == 0.75

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").add(-1)

    def test_name_cannot_be_two_kinds(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (0, 1, 3, 9):
            histogram.observe(value)
        data = registry.to_dict()["lat"]
        assert data["count"] == 4
        assert data["min"] == 0 and data["max"] == 9
        assert data["buckets"] == {"0": 1, "1": 1, "4": 1, "16": 1}
        assert histogram.mean == pytest.approx(3.25)

    def test_json_export_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            registry.gauge("b").set(1.0)
            registry.counter("a").add(2)
            registry.histogram("c").observe(7)
            return registry.to_json()

        assert build() == build()


# ---------------------------------------------------------------------------
# Tracer and Chrome export
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_by_depth(self):
        tracer = Tracer(TickClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_dangling_nested_spans_closed_with_parent(self):
        tracer = Tracer(TickClock())
        outer = tracer.span("outer")
        tracer.span("inner")  # never closed explicitly
        outer.close()
        assert {span.name for span in tracer.spans} == {"outer", "inner"}
        assert all(span.end is not None for span in tracer.spans)

    def test_total_sums_same_named_spans(self):
        tracer = Tracer(ManualClock())
        for _ in range(2):
            span = tracer.span("work")
            tracer.clock.advance(1.0)
            span.close()
        assert tracer.total("work") == pytest.approx(2.0)

    def test_chrome_trace_is_valid_and_deterministic(self):
        def build():
            tracer = Tracer(TickClock())
            with tracer.span("phase", category="test", detail=1):
                pass
            tracer.add_span("cell", 0.5, 0.25, tid=2, cached=False)
            return chrome_trace_json(tracer)

        first, second = build(), build()
        assert first == second
        data = json.loads(first)
        assert validate_chrome_trace(data) == []
        tracks = {
            event["args"]["name"]
            for event in data["traceEvents"]
            if event["name"] == "thread_name"
        }
        assert tracks == {"main", "worker-2"}

    def test_validator_flags_broken_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1}]}
        )
        assert any("ts" in problem for problem in problems)


# ---------------------------------------------------------------------------
# Timeline probe
# ---------------------------------------------------------------------------


class TestTimelineProbe:
    def test_records_every_committed_instruction(self):
        probe = TimelineProbe()
        result = api.run(BASELINE, small_trace(), probes=[probe])
        committed = [event for event in probe.events() if event.committed]
        assert len(committed) == result.committed_instructions
        assert probe.dropped == 0

    def test_ring_bounds_memory_and_counts_drops(self):
        probe = TimelineProbe(capacity=16)
        result = api.run(BASELINE, small_trace(), probes=[probe])
        assert len(probe.events()) == 16
        assert probe.recorded >= result.committed_instructions
        assert probe.dropped == probe.recorded - 16
        # The ring keeps the most recent events, in order.
        seqs = [event.seq for event in probe.events() if event.committed]
        assert seqs == sorted(seqs)

    def test_window_filters_by_trace_index(self):
        probe = TimelineProbe()
        api.run(BASELINE, small_trace(), probes=[probe])
        events = probe.window(10, 20)
        assert events
        assert all(10 <= event.trace_index < 20 for event in events)
        with pytest.raises(ValueError):
            probe.window(5, 1)

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            TimelineProbe(capacity=0)

    def test_render_timeline_draws_lanes(self):
        probe = TimelineProbe()
        api.run(BASELINE, small_trace(), probes=[probe])
        text = render_timeline(probe.window(0, 12))
        assert "cycles" in text.splitlines()[0]
        assert "R" in text  # at least one commit mark
        assert render_timeline([]) == "(no timeline events)"


class TestProbeEventOrdering:
    """The skip-aware path must not reorder or drop lifecycle events.

    The event-driven kernel skips idle spans; the per-cycle kernel steps
    every cycle.  A probe observing dispatch/commit/squash must see the
    identical event sequence either way — this is the differential
    contract the timeline rests on.
    """

    @pytest.mark.parametrize("config", [BASELINE, COOO], ids=["baseline", "cooo"])
    @pytest.mark.parametrize(
        "trace_factory", [small_trace, branchy_trace], ids=["daxpy", "branches"]
    )
    def test_event_driven_matches_per_cycle(self, config, trace_factory):
        def lifecycle(force_per_cycle):
            probe = TimelineProbe()
            api.run(
                config,
                trace_factory(),
                probes=[probe],
                force_per_cycle=force_per_cycle,
            )
            return [
                (
                    event.seq,
                    event.trace_index,
                    event.dispatch_cycle,
                    event.issue_cycle,
                    event.complete_cycle,
                    event.commit_cycle,
                    event.squashed,
                )
                for event in probe.events()
            ]

        assert lifecycle(False) == lifecycle(True)


# ---------------------------------------------------------------------------
# CPI stall attribution
# ---------------------------------------------------------------------------


class TestStallAttribution:
    @pytest.mark.parametrize("config", [BASELINE, COOO], ids=["baseline", "cooo"])
    def test_buckets_sum_exactly_to_total_cycles(self, config):
        probe = StallAttributionProbe()
        result = api.run(config, small_trace(), probes=[probe])
        assert probe.total == result.cycles
        assert sum(probe.breakdown().values()) == result.cycles

    @pytest.mark.parametrize("config", [BASELINE, COOO], ids=["baseline", "cooo"])
    @pytest.mark.parametrize(
        "trace_factory", [small_trace, branchy_trace], ids=["daxpy", "branches"]
    )
    def test_event_driven_breakdown_matches_per_cycle(self, config, trace_factory):
        def breakdown(force_per_cycle):
            probe = StallAttributionProbe()
            api.run(
                config,
                trace_factory(),
                probes=[probe],
                force_per_cycle=force_per_cycle,
            )
            return probe.breakdown()

        assert breakdown(False) == breakdown(True)

    def test_fractions_sum_to_one(self):
        probe = StallAttributionProbe()
        api.run(BASELINE, small_trace(), probes=[probe])
        assert sum(probe.fractions().values()) == pytest.approx(1.0)

    def test_accumulates_across_sampled_windows(self):
        probe = StallAttributionProbe()
        plan = SamplingPlan(period=2000, window=400, warmup=100)
        result = api.run(BASELINE, numerical.daxpy(elements=2000), probes=[probe], sampling=plan)
        assert result.sampled
        # Detailed cycles from *every* window land in the buckets.
        assert probe.total > 400  # more than one window's worth

    def test_render_stall_table_shows_categories(self):
        probe = StallAttributionProbe()
        api.run(BASELINE, small_trace(), probes=[probe])
        text = render_stall_table({"daxpy": probe.breakdown()})
        for category in CATEGORIES:
            assert category in text
        assert "%" in text


# ---------------------------------------------------------------------------
# Session integration: results must be bit-identical
# ---------------------------------------------------------------------------


class TestTelemetrySession:
    @pytest.mark.parametrize("config", [BASELINE, COOO], ids=["baseline", "cooo"])
    def test_results_identical_with_and_without_telemetry(self, config):
        bare = api.run(config, small_trace())
        session = TelemetrySession(deterministic=True)
        observed = api.run(config, small_trace(), telemetry=session)
        assert observed.summary_row() == bare.summary_row()
        assert observed.cycles == bare.cycles
        assert observed.ipc == bare.ipc

    def test_session_collects_spans_stalls_and_timeline(self):
        session = TelemetrySession(deterministic=True)
        result = api.run(BASELINE, small_trace(), telemetry=session)
        assert session.stalls.total == result.cycles
        assert session.timeline.recorded >= result.committed_instructions
        names = [span.name for span in session.tracer.spans]
        assert any(name.startswith("simulate:") for name in names)

    def test_sampled_run_records_phase_spans(self):
        session = TelemetrySession(deterministic=True)
        plan = SamplingPlan(period=2000, window=400, warmup=100)
        result = api.run(
            BASELINE, numerical.daxpy(elements=2000), telemetry=session, sampling=plan
        )
        assert result.sampled
        tracer = session.tracer
        assert tracer.total("sampling:fast-forward") > 0
        assert tracer.total("sampling:window") > 0
        assert len(list(tracer.find("sampling:window"))) == len(result.windows)

    def test_stalls_only_session_skips_timeline(self):
        session = TelemetrySession(timeline=False)
        assert session.timeline is None
        assert session.probes() == [session.stalls]

    def test_spans_only_session_attaches_no_probes(self):
        session = TelemetrySession(timeline=False, stalls=False)
        assert session.probes() == []


# ---------------------------------------------------------------------------
# Benchmark rows: sampled wall-clock split
# ---------------------------------------------------------------------------


class TestBenchSampledSplit:
    def test_sampled_row_reports_fast_forward_vs_window_seconds(self):
        from repro.perf import BenchmarkSpec, run_benchmark

        spec = BenchmarkSpec(
            "tiny-sampled",
            lambda: scaled_baseline(window=64, memory_latency=100),
            lambda: numerical.daxpy(elements=2000),
            sampling=SamplingPlan(period=2000, window=400, warmup=100),
        )
        row = run_benchmark(spec, repeats=1)
        assert row["fast_forward_seconds"] >= 0
        assert row["window_seconds"] > 0
        # The split cannot exceed the repeat's total wall-clock.
        assert row["fast_forward_seconds"] + row["window_seconds"] <= row["seconds"] * 1.5

    def test_exact_row_has_no_split(self):
        from repro.perf import BenchmarkSpec, run_benchmark

        spec = BenchmarkSpec(
            "tiny-exact",
            lambda: scaled_baseline(window=64, memory_latency=100),
            lambda: numerical.daxpy(elements=100),
        )
        row = run_benchmark(spec, repeats=1)
        assert "fast_forward_seconds" not in row
        assert "window_seconds" not in row


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------


class TestLogging:
    def test_resolve_level_mapping(self):
        import logging

        assert resolve_level(None, 0) == logging.WARNING
        assert resolve_level(None, 1) == logging.INFO
        assert resolve_level(None, 2) == logging.DEBUG
        assert resolve_level("error", 2) == logging.ERROR  # explicit wins
        with pytest.raises(ValueError):
            resolve_level("loud")

    def test_setup_is_idempotent(self):
        logger = setup_cli_logging(log_level="info")
        logger = setup_cli_logging(log_level="info")
        assert len(logger.handlers) == 1
        assert not logger.propagate


# ---------------------------------------------------------------------------
# CLI: repro profile / repro timeline / --log-level
# ---------------------------------------------------------------------------


class TestTelemetryCli:
    def test_profile_emits_report_and_valid_deterministic_trace(self, tmp_path, capsys):
        out_first = tmp_path / "first.json"
        out_second = tmp_path / "second.json"
        argv_tail = [
            "profile",
            "baseline:daxpy:200",
            "--window", "64",
            "--memory-latency", "100",
            "--deterministic",
        ]
        assert main(argv_tail + ["--trace-out", str(out_first)]) == 0
        out = capsys.readouterr().out
        assert "phase spans" in out
        assert "CPI stall attribution" in out
        for category in CATEGORIES:
            assert category in out
        assert main(argv_tail + ["--trace-out", str(out_second)]) == 0
        # Byte-identical across runs under the deterministic clock.
        assert out_first.read_bytes() == out_second.read_bytes()
        data = json.loads(out_first.read_text())
        assert validate_chrome_trace(data) == []

    def test_timeline_renders_window(self, capsys):
        code = main(
            [
                "timeline",
                "baseline:gather:60",
                "--machine-window", "32",
                "--memory-latency", "100",
                "--window", "5:15",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "recorded" in out

    def test_profile_rejects_malformed_cell(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "justonepart"])
        assert "MACHINE:WORKLOAD" in capsys.readouterr().err

    def test_profile_rejects_unknown_machine(self, capsys):
        with pytest.raises(SystemExit):
            main(["profile", "warpdrive:daxpy"])
        assert "unknown machine" in capsys.readouterr().err

    def test_timeline_rejects_bad_window(self, capsys):
        code = main(
            [
                "timeline",
                "baseline:daxpy:50",
                "--memory-latency", "100",
                "--window", "nope",
            ]
        )
        assert code == 2
        assert "START:STOP" in capsys.readouterr().err

    def test_root_log_level_flag_accepted(self, capsys):
        assert main(["--log-level", "debug", "list"]) == 0
        assert main(["-vv", "list"]) == 0
