"""Tests for simulation results, occupancy/breakdown analysis and reporting."""

import pytest

from repro.analysis.breakdown import FIGURE12_ORDER, average_breakdown, retirement_breakdown
from repro.analysis.occupancy import (
    average_profiles,
    mean_in_flight,
    occupancy_profile,
    weighted_mean,
    weighted_percentile,
)
from repro.analysis.report import (
    format_bar_chart,
    format_stacked_percentages,
    format_table,
    indent,
)
from repro.common.config import cooo_config, scaled_baseline
from repro.api import run as simulate
from repro.core.processor import average_ipc
from repro.core.result import SimulationResult
from repro.isa.instruction import RetireClass
from repro.workloads import daxpy


def make_result(**overrides):
    defaults = dict(
        config_name="test",
        mode="baseline",
        workload="unit",
        cycles=1000,
        committed_instructions=2500,
        fetched_instructions=2600,
        stats={},
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestSimulationResult:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(2.5)

    def test_ipc_with_zero_cycles(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_replay_overhead(self):
        assert make_result().replay_overhead == pytest.approx(2600 / 2500)

    def test_branch_accuracy(self):
        result = make_result(stats={"branch.predictions": 100, "branch.mispredictions": 5})
        assert result.branch_accuracy == pytest.approx(0.95)
        assert make_result().branch_accuracy == 1.0

    def test_l2_miss_fraction(self):
        result = make_result(stats={"mem.loads": 200, "mem.l2_miss_loads": 20})
        assert result.l2_load_miss_fraction == pytest.approx(0.1)

    def test_pseudo_rob_breakdown_normalised(self):
        result = make_result(stats={"pseudo_rob.retire_class": {"moved": 30, "finished": 70}})
        breakdown = result.pseudo_rob_breakdown()
        assert breakdown["moved"] == pytest.approx(0.3)
        assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_pseudo_rob_breakdown_empty(self):
        assert make_result().pseudo_rob_breakdown() == {}

    def test_summary_row_keys(self):
        row = make_result().summary_row()
        assert {"config", "mode", "workload", "cycles", "instructions", "ipc"} <= set(row)

    def test_stat_default(self):
        assert make_result().stat("does.not.exist", default=3.5) == 3.5

    def test_average_ipc_helper(self):
        results = [make_result(cycles=1000), make_result(cycles=2500)]
        assert average_ipc(results) == pytest.approx((2.5 + 1.0) / 2)

    def test_real_run_populates_stats(self):
        result = simulate(scaled_baseline(window=64, memory_latency=50), daxpy(elements=30))
        assert result.mode == "baseline"
        assert result.workload == "daxpy"
        assert result.stat("commit.instructions") == result.committed_instructions


class TestOccupancyAnalysis:
    def test_weighted_percentile(self):
        weights = {10: 50, 20: 30, 100: 20}
        assert weighted_percentile(weights, 0.25) == 10
        assert weighted_percentile(weights, 0.6) == 20
        assert weighted_percentile(weights, 0.95) == 100
        assert weighted_percentile({}, 0.5) == 0

    def test_weighted_mean(self):
        assert weighted_mean({2: 1, 4: 1}) == pytest.approx(3.0)
        assert weighted_mean({}) == 0.0

    def test_profile_from_real_run(self):
        result = simulate(scaled_baseline(window=256, memory_latency=300), daxpy(elements=120))
        profile = occupancy_profile(result)
        assert profile.mean_in_flight > 0
        assert profile.mean_live <= profile.mean_in_flight
        assert 0 <= profile.live_fraction <= 1
        assert profile.in_flight_percentiles[0.9] >= profile.in_flight_percentiles[0.5]

    def test_live_far_below_in_flight_for_memory_bound_code(self):
        """The core Figure 7 observation."""
        result = simulate(scaled_baseline(window=512, memory_latency=500), daxpy(elements=200))
        profile = occupancy_profile(result)
        assert profile.mean_live < 0.6 * profile.mean_in_flight

    def test_average_profiles(self):
        result = simulate(scaled_baseline(window=128, memory_latency=100), daxpy(elements=60))
        first = occupancy_profile(result)
        combined = average_profiles([first, first])
        assert combined.mean_in_flight == pytest.approx(first.mean_in_flight)
        assert combined.workload == "average"

    def test_average_profiles_rejects_empty(self):
        with pytest.raises(ValueError):
            average_profiles([])

    def test_mean_in_flight_helper(self):
        result = simulate(scaled_baseline(window=128, memory_latency=100), daxpy(elements=60))
        assert mean_in_flight([result]) == pytest.approx(result.mean_in_flight)
        assert mean_in_flight([]) == 0.0


class TestBreakdownAnalysis:
    def test_breakdown_from_real_run(self):
        result = simulate(
            cooo_config(iq_size=16, sliq_size=128, memory_latency=200), daxpy(elements=80)
        )
        breakdown = retirement_breakdown(result)
        assert breakdown.total == pytest.approx(1.0, abs=1e-6)
        assert breakdown.fraction(RetireClass.STORE) > 0

    def test_average_breakdown(self):
        result = simulate(
            cooo_config(iq_size=16, sliq_size=128, memory_latency=200), daxpy(elements=80)
        )
        combined = average_breakdown([result, result])
        single = retirement_breakdown(result)
        for retire_class in RetireClass:
            assert combined.fraction(retire_class) == pytest.approx(single.fraction(retire_class))

    def test_average_breakdown_rejects_empty(self):
        with pytest.raises(ValueError):
            average_breakdown([])

    def test_percentages_view(self):
        result = simulate(
            cooo_config(iq_size=16, sliq_size=128, memory_latency=200), daxpy(elements=80)
        )
        percentages = retirement_breakdown(result).as_percentages()
        assert set(percentages) == {rc.value for rc in FIGURE12_ORDER}
        assert sum(percentages.values()) == pytest.approx(100.0, abs=0.5)


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        text = format_table([{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "2.346" in text
        assert len(lines) == 4

    def test_format_table_union_of_columns(self):
        text = format_table([{"a": 1}, {"a": 2, "extra": "x"}])
        assert "extra" in text

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_bar_chart(self):
        text = format_bar_chart({"one": 1.0, "two": 2.0}, width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_format_bar_chart_empty(self):
        assert format_bar_chart({}) == "(no data)"

    def test_format_stacked_percentages(self):
        text = format_stacked_percentages(
            {"cfg": {"moved": 25.0, "store": 10.0}}, categories=["moved", "store"]
        )
        assert "25.0%" in text and "10.0%" in text

    def test_indent(self):
        assert indent("a\nb") == "  a\n  b"
