"""Tests for the reorder buffer, checkpoints, the checkpoint table and policies."""

import pytest

from repro.common.config import CheckpointConfig
from repro.common.errors import CheckpointError, StructuralHazardError
from repro.core.cam_rename import RenameSnapshot
from repro.core.checkpoint import Checkpoint, CheckpointPolicy, CheckpointTable
from repro.core.rob import ReorderBuffer
from repro.isa.instruction import DynInst, InstState, Instruction
from repro.isa.opcodes import OpClass


def dyn(seq, op=OpClass.INT_ALU, dest=1, mem_addr=None, **kwargs):
    if op in (OpClass.STORE, OpClass.FP_STORE):
        dest = None
        mem_addr = mem_addr or 0x100
    instr = Instruction(pc=seq * 4, op=op, dest=dest, srcs=(), mem_addr=mem_addr, **kwargs)
    return DynInst(seq=seq, trace_index=seq, instr=instr)


def snapshot(num_regs=96):
    return RenameSnapshot(valid=[False] * num_regs, mapping=list(range(64)))


class TestReorderBuffer:
    def test_insert_and_occupancy(self, stats):
        rob = ReorderBuffer(4, stats)
        rob.insert(dyn(1))
        rob.insert(dyn(2))
        assert rob.occupancy == 2
        assert not rob.is_full
        assert rob.free_entries() == 2

    def test_overflow_rejected(self, stats):
        rob = ReorderBuffer(1, stats)
        rob.insert(dyn(1))
        with pytest.raises(StructuralHazardError):
            rob.insert(dyn(2))

    def test_commit_in_order_only_done_instructions(self, stats):
        rob = ReorderBuffer(8, stats)
        instructions = [dyn(i) for i in range(4)]
        for inst in instructions:
            rob.insert(inst)
        instructions[0].state = InstState.DONE
        instructions[2].state = InstState.DONE
        ready = rob.committable(width=4)
        assert [inst.seq for inst in ready] == [0]

    def test_commit_width_limits(self, stats):
        rob = ReorderBuffer(8, stats)
        for i in range(4):
            inst = dyn(i)
            inst.state = InstState.DONE
            rob.insert(inst)
        assert len(rob.committable(width=2)) == 2

    def test_commit_head_pops(self, stats):
        rob = ReorderBuffer(4, stats)
        inst = dyn(1)
        rob.insert(inst)
        assert rob.commit_head() is inst
        assert rob.is_empty

    def test_commit_from_empty_rejected(self, stats):
        with pytest.raises(StructuralHazardError):
            ReorderBuffer(4, stats).commit_head()

    def test_squash_younger_than(self, stats):
        rob = ReorderBuffer(8, stats)
        for i in range(6):
            rob.insert(dyn(i))
        squashed = rob.squash_younger_than(2)
        assert [inst.seq for inst in squashed] == [5, 4, 3]
        assert rob.occupancy == 3
        assert rob.head().seq == 0


class TestCheckpoint:
    def test_associate_counts(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        store = dyn(1, op=OpClass.STORE)
        checkpoint.associate(dyn(0))
        checkpoint.associate(store)
        assert checkpoint.pending_count == 2
        assert checkpoint.instruction_count == 2
        assert checkpoint.store_count == 1
        assert checkpoint.stores == [store]

    def test_instruction_finished_and_ready(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        checkpoint.associate(dyn(0))
        assert not checkpoint.ready_to_commit
        checkpoint.instruction_finished()
        assert checkpoint.ready_to_commit

    def test_pending_underflow_rejected(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        with pytest.raises(CheckpointError):
            checkpoint.instruction_finished()

    def test_cannot_associate_with_closed_checkpoint(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        checkpoint.closed = True
        with pytest.raises(CheckpointError):
            checkpoint.associate(dyn(0))

    def test_disassociate_pending_instruction(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        inst = dyn(3)
        checkpoint.associate(inst)
        checkpoint.disassociate(inst)
        assert checkpoint.pending_count == 0
        assert checkpoint.instruction_count == 0

    def test_disassociate_completed_instruction_keeps_pending(self):
        checkpoint = Checkpoint(0, 0, 0, snapshot(), created_cycle=0)
        done = dyn(3)
        pending = dyn(4)
        checkpoint.associate(done)
        checkpoint.associate(pending)
        done.complete_cycle = 10
        checkpoint.instruction_finished()
        checkpoint.disassociate(done)
        assert checkpoint.pending_count == 1
        assert checkpoint.instruction_count == 1

    def test_reset_window(self):
        checkpoint = Checkpoint(0, 5, 7, snapshot(), created_cycle=0)
        checkpoint.associate(dyn(7, op=OpClass.STORE))
        checkpoint.to_free.add(9)
        checkpoint.closed = True
        checkpoint.reset_window()
        assert checkpoint.pending_count == 0
        assert not checkpoint.stores
        assert not checkpoint.to_free
        assert not checkpoint.closed
        assert checkpoint.resume_index == 5


class TestCheckpointTable:
    def make(self, stats, capacity=4):
        return CheckpointTable(capacity, stats)

    def create(self, table, resume_index=0, resume_seq=0, harvested=None, cycle=0):
        return table.create(resume_index, resume_seq, snapshot(), harvested or set(), cycle)

    def test_create_and_order(self, stats):
        table = self.make(stats)
        first = self.create(table, 0, 0)
        second = self.create(table, 10, 10)
        assert table.oldest() is first
        assert table.youngest() is second
        assert first.closed and not second.closed

    def test_create_attaches_harvest_to_previous(self, stats):
        table = self.make(stats)
        first = self.create(table)
        self.create(table, 10, 10, harvested={42})
        assert 42 in first.to_free

    def test_harvest_with_empty_table_rejected(self, stats):
        table = self.make(stats)
        with pytest.raises(CheckpointError):
            self.create(table, harvested={1})

    def test_overflow_rejected(self, stats):
        table = self.make(stats, capacity=2)
        self.create(table)
        self.create(table, 1, 1)
        assert table.is_full
        with pytest.raises(CheckpointError):
            self.create(table, 2, 2)

    def test_pop_oldest(self, stats):
        table = self.make(stats)
        first = self.create(table)
        self.create(table, 1, 1)
        assert table.pop_oldest() is first
        assert table.occupancy == 1

    def test_find_by_uid(self, stats):
        table = self.make(stats)
        first = self.create(table)
        assert table.find(first.uid) is first
        assert table.find(99) is None

    def test_discard_younger_than(self, stats):
        table = self.make(stats)
        first = self.create(table)
        second = self.create(table, 1, 1)
        third = self.create(table, 2, 2)
        discarded = table.discard_younger_than(first)
        assert discarded == [third, second]
        assert table.youngest() is first

    def test_discard_younger_than_seq_reopens_survivor(self, stats):
        table = self.make(stats)
        first = self.create(table, 0, 0)
        self.create(table, 50, 50)
        discarded = table.discard_younger_than_seq(20)
        assert len(discarded) == 1
        assert table.youngest() is first
        assert not first.closed

    def test_reserved_registers(self, stats):
        table = self.make(stats)
        first = self.create(table)
        second = self.create(table, 1, 1, harvested={7})
        self.create(table, 2, 2, harvested={9})
        assert table.reserved_registers() == {7, 9}
        assert table.reserved_registers(up_to=second) == {7}

    def test_remove_from_pending_free(self, stats):
        table = self.make(stats)
        first = self.create(table)
        self.create(table, 1, 1, harvested={7, 8})
        table.remove_from_pending_free(7)
        assert first.to_free == {8}


class TestCheckpointPolicy:
    def account_n(self, policy, count, op=OpClass.INT_ALU):
        for i in range(count):
            policy.account(dyn(i, op=op))

    def test_paper_policy_branch_after_threshold(self):
        policy = CheckpointPolicy(CheckpointConfig())
        self.account_n(policy, 63)
        assert not policy.should_checkpoint(dyn(100, op=OpClass.BRANCH, dest=None))
        self.account_n(policy, 1)
        assert not policy.should_checkpoint(dyn(101))  # non-branch: not yet
        assert policy.should_checkpoint(dyn(102, op=OpClass.BRANCH, dest=None))

    def test_paper_policy_hard_instruction_cap(self):
        policy = CheckpointPolicy(CheckpointConfig())
        self.account_n(policy, 512)
        assert policy.should_checkpoint(dyn(600))

    def test_paper_policy_store_cap(self):
        policy = CheckpointPolicy(CheckpointConfig())
        self.account_n(policy, 64, op=OpClass.STORE)
        assert policy.should_checkpoint(dyn(700))

    def test_checkpoint_taken_resets_counters(self):
        policy = CheckpointPolicy(CheckpointConfig())
        self.account_n(policy, 512)
        policy.checkpoint_taken()
        assert policy.instructions_since_last == 0
        assert not policy.should_checkpoint(dyn(900, op=OpClass.BRANCH, dest=None))

    def test_every_n_policy(self):
        policy = CheckpointPolicy(CheckpointConfig(policy="every_n", branch_threshold=16))
        self.account_n(policy, 15)
        assert not policy.should_checkpoint(dyn(20))
        self.account_n(policy, 1)
        assert policy.should_checkpoint(dyn(21))

    def test_branch_only_policy_has_safety_cap(self):
        policy = CheckpointPolicy(CheckpointConfig(policy="branch_only"))
        self.account_n(policy, 512)
        assert policy.should_checkpoint(dyn(600))

    def test_store_only_policy(self):
        policy = CheckpointPolicy(CheckpointConfig(policy="store_only", store_threshold=4))
        self.account_n(policy, 4, op=OpClass.STORE)
        assert policy.should_checkpoint(dyn(10, op=OpClass.STORE))
        assert not policy.should_checkpoint(dyn(11))
