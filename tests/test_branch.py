"""Tests for branch predictors and the BTB."""

import pytest

from repro.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    GSharePredictor,
    PerfectPredictor,
    StaticNotTakenPredictor,
    StaticTakenPredictor,
    build_predictor,
)
from repro.common.config import BranchConfig
from repro.common.stats import StatsRegistry


@pytest.fixture
def config():
    return BranchConfig(history_entries=1024, btb_entries=64, penalty=10)


class TestFactory:
    def test_gshare_default(self, config, stats):
        assert isinstance(build_predictor(config, stats), GSharePredictor)

    def test_perfect_overrides_kind(self, stats):
        config = BranchConfig(perfect=True)
        assert isinstance(build_predictor(config, stats), PerfectPredictor)

    def test_other_kinds(self, stats):
        assert isinstance(
            build_predictor(BranchConfig(kind="bimodal"), stats), BimodalPredictor
        )
        assert isinstance(
            build_predictor(BranchConfig(kind="static_taken"), stats), StaticTakenPredictor
        )
        assert isinstance(
            build_predictor(BranchConfig(kind="static_not_taken"), stats),
            StaticNotTakenPredictor,
        )


class TestStaticPredictors:
    def test_static_taken(self, config, stats):
        predictor = StaticTakenPredictor(config, stats)
        assert predictor.predict(0x100) is True

    def test_static_not_taken(self, config, stats):
        predictor = StaticNotTakenPredictor(config, stats)
        assert predictor.predict(0x100) is False

    def test_accuracy_bookkeeping(self, config, stats):
        predictor = StaticTakenPredictor(config, stats)
        predictor.record_outcome(True, True)
        predictor.record_outcome(True, False)
        assert predictor.accuracy == pytest.approx(0.5)

    def test_accuracy_with_no_predictions(self, config, stats):
        assert StaticTakenPredictor(config, stats).accuracy == 1.0


class TestBimodal:
    def test_learns_biased_branch(self, config, stats):
        predictor = BimodalPredictor(config, stats)
        pc = 0x200
        for _ in range(4):
            predictor.update(pc, False)
        assert predictor.predict(pc) is False

    def test_counters_saturate(self, config, stats):
        predictor = BimodalPredictor(config, stats)
        pc = 0x200
        for _ in range(10):
            predictor.update(pc, True)
        predictor.update(pc, False)
        # one not-taken after saturation must not flip the prediction
        assert predictor.predict(pc) is True


class TestGShare:
    def test_learns_loop_branch(self, config, stats):
        predictor = GSharePredictor(config, stats)
        pc = 0x400
        # train: taken 15 times, not taken once, repeatedly
        for _ in range(8):
            for i in range(16):
                outcome = i != 15
                history = predictor.snapshot_history()
                predicted = predictor.predict(pc)
                predictor.update(pc, outcome, history)
                if predicted != outcome:
                    predictor.correct_history(history, outcome)
        # measure accuracy over one more period
        correct = 0
        for i in range(16):
            outcome = i != 15
            history = predictor.snapshot_history()
            predicted = predictor.predict(pc)
            predictor.update(pc, outcome, history)
            if predicted == outcome:
                correct += 1
            else:
                predictor.correct_history(history, outcome)
        assert correct >= 14

    def test_history_advances_speculatively(self, config, stats):
        predictor = GSharePredictor(config, stats)
        before = predictor.history
        predictor.predict(0x104)
        assert predictor.history != before or predictor.history == ((before << 1) & 0x3FF)

    def test_repair_history(self, config, stats):
        predictor = GSharePredictor(config, stats)
        predictor.predict(0x104)
        predictor.repair_history(0)
        assert predictor.history == 0

    def test_correct_history_shifts_actual_outcome(self, config, stats):
        predictor = GSharePredictor(config, stats)
        predictor.correct_history(0b101, True)
        assert predictor.history & 1 == 1

    def test_update_without_history_uses_current(self, config, stats):
        predictor = GSharePredictor(config, stats)
        for _ in range(4):
            predictor.update(0x88, True)
        assert predictor.predict(0x88) is True

    def test_warm_advances_only_history(self, config, stats):
        # warm() models a resolved branch passing through fetch again: the
        # history register must see the outcome, but the tables must never
        # be trained — re-training resolved branches is what sustained the
        # cooo mispredict-rollback-replay livelock.
        predictor = GSharePredictor(config, stats)
        counters_before = list(predictor._counters)
        for i in range(64):
            predictor.warm(0x1008 + 8 * i, i % 3 == 0)
        assert predictor._counters == counters_before
        assert predictor.history != 0

    def test_warm_shifts_outcome_into_history(self, config, stats):
        predictor = GSharePredictor(config, stats)
        predictor.warm(0x1008, True)
        assert predictor.history & 1 == 1
        predictor.warm(0x1008, False)
        assert predictor.history & 1 == 0

    def test_warm_then_predict_is_untrained(self, config, stats):
        # After any amount of warming, predictions still come from the
        # weakly-taken initial counters.
        predictor = GSharePredictor(config, stats)
        for _ in range(32):
            predictor.warm(0x40, False)
        predictor.repair_history(0)
        assert predictor.predict(0x40) is True  # initial counters say taken


class TestBTB:
    def test_miss_then_hit(self, config, stats):
        btb = BranchTargetBuffer(config, stats)
        assert btb.lookup(0x100) is None
        btb.update(0x100, 0x80)
        assert btb.lookup(0x100) == 0x80

    def test_aliasing_eviction(self, config, stats):
        btb = BranchTargetBuffer(config, stats)
        pc_a = 0x100
        pc_b = pc_a + 64 * 4  # same index, different tag
        btb.update(pc_a, 0x1)
        btb.update(pc_b, 0x2)
        assert btb.lookup(pc_a) is None
        assert btb.lookup(pc_b) == 0x2

    def test_invalidate(self, config, stats):
        btb = BranchTargetBuffer(config, stats)
        btb.update(0x100, 0x80)
        btb.invalidate()
        assert btb.lookup(0x100) is None

    def test_stats_counted(self, config, stats):
        btb = BranchTargetBuffer(config, stats)
        btb.lookup(0x100)
        btb.update(0x100, 0x80)
        btb.lookup(0x100)
        assert stats.value("btb.misses") == 1
        assert stats.value("btb.hits") == 1
