"""Tests for the static-analysis subsystem (repro.analysis.lint).

Fixture trees under tests/analysis_fixtures/ mimic the src/repro package
layout (several rules scope by top-level package).  The `bad/` root
must trip every rule at the expected file; the `good/` root must lint
clean; the shipped package must self-host (lint clean through its
committed baseline and fingerprint manifest).
"""

import json
from pathlib import Path

import pytest

from repro import api
from repro.analysis.lint import (
    LintEngine,
    module_fingerprint,
    run_lint,
    rule_ids,
    update_fingerprints,
)
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"


def findings_by_rule(report):
    out = {}
    for finding in report.findings:
        out.setdefault(finding.rule, []).append(finding)
    return out


# ---------------------------------------------------------------------------
# Rule-by-rule fixtures
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    EXPECTED = {
        "RPR101": "workloads/uses_ambient_random.py",
        "RPR102": "core/uses_wallclock.py",
        "RPR103": "core/uses_id_order.py",
        "RPR104": "core/uses_set_order.py",
        "RPR105": "core/uses_env.py",
        "RPR201": "common/config.py",
        "RPR301": "core/missing_slots.py",
        "RPR302": "core/missing_slots.py",
        "RPR401": "core/lazy_probe.py",
        "RPR501": "uses_shim.py",
        "RPR601": "experiments/fragile_io.py",
        "RPR602": "experiments/fragile_io.py",
    }

    @pytest.fixture(scope="class")
    def bad_report(self):
        return run_lint(BAD)

    def test_bad_root_is_dirty(self, bad_report):
        assert not bad_report.ok

    @pytest.mark.parametrize("rule", sorted(EXPECTED))
    def test_rule_fires_at_expected_file(self, bad_report, rule):
        by_rule = findings_by_rule(bad_report)
        assert rule in by_rule, f"{rule} produced no findings on the bad tree"
        files = {finding.file for finding in by_rule[rule]}
        assert self.EXPECTED[rule] in files

    def test_no_unexpected_rules_fire(self, bad_report):
        fired = set(findings_by_rule(bad_report))
        assert fired == set(self.EXPECTED)

    def test_finding_counts(self, bad_report):
        by_rule = findings_by_rule(bad_report)
        # uses_ambient_random: seed() + random() calls plus the bare import.
        assert len(by_rule["RPR101"]) == 3
        # uses_wallclock: time.time, perf_counter, datetime.now.
        assert len(by_rule["RPR102"]) == 3
        # uses_set_order: list() call + list comprehension.
        assert len(by_rule["RPR104"]) == 2
        # uses_shim: Processor and build_pipeline imports.
        assert len(by_rule["RPR501"]) == 2

    def test_good_root_is_clean(self):
        report = run_lint(GOOD)
        assert report.ok, [finding.format() for finding in report.findings]

    def test_findings_carry_location_and_symbol(self, bad_report):
        for finding in bad_report.findings:
            assert finding.rule in rule_ids()
            assert finding.file and finding.line > 0
            assert finding.symbol
            assert finding.format().startswith(f"{finding.file}:{finding.line}:")


# ---------------------------------------------------------------------------
# Determinism of the analyzer itself
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_repeated_runs_identical(self):
        first = run_lint(BAD).to_dict()
        second = run_lint(BAD).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_findings_sorted(self):
        report = run_lint(BAD)
        keys = [finding.sort_key() for finding in report.findings]
        assert keys == sorted(keys)

    def test_json_shape(self):
        payload = run_lint(BAD).to_dict()
        assert set(payload) == {
            "ok",
            "files_checked",
            "rules_run",
            "suppressed",
            "baselined",
            "findings",
        }
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "severity", "file", "line", "symbol", "message"}


# ---------------------------------------------------------------------------
# Inline suppressions
# ---------------------------------------------------------------------------


def write_tree(root, files):
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
    return root


ID_ORDER_SNIPPET = "def key(inst):\n    return id(inst)\n"


class TestSuppressions:
    def test_inline_suppression_with_reason(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/mod.py": (
                    "def key(inst):\n"
                    "    # lint: ignore[RPR103] structural identity only, never ordered\n"
                    "    return id(inst)\n"
                )
            },
        )
        report = run_lint(tmp_path)
        assert report.ok
        assert report.suppressed == 1

    def test_inline_suppression_same_line(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/mod.py": (
                    "def key(inst):\n"
                    "    return id(inst)  # lint: ignore[RPR103] identity only\n"
                )
            },
        )
        report = run_lint(tmp_path)
        assert report.ok and report.suppressed == 1

    def test_suppression_without_reason_is_error(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/mod.py": (
                    "def key(inst):\n"
                    "    return id(inst)  # lint: ignore[RPR103]\n"
                )
            },
        )
        report = run_lint(tmp_path)
        assert [finding.rule for finding in report.findings] == ["RPR002"]

    def test_suppression_only_covers_named_rule(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "core/mod.py": (
                    "def key(inst):\n"
                    "    return id(inst)  # lint: ignore[RPR104] wrong rule named\n"
                )
            },
        )
        report = run_lint(tmp_path)
        assert "RPR103" in {finding.rule for finding in report.findings}


# ---------------------------------------------------------------------------
# Baseline add / expire
# ---------------------------------------------------------------------------


class TestBaseline:
    def test_baselined_finding_passes(self, tmp_path):
        write_tree(tmp_path, {"core/mod.py": ID_ORDER_SNIPPET})
        baseline = tmp_path / "analysis" / "lint_baseline.json"
        baseline.parent.mkdir()
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "RPR103",
                            "file": "core/mod.py",
                            "symbol": "key",
                            "reason": "structural identity, never ordered",
                        }
                    ]
                }
            )
        )
        report = run_lint(tmp_path)
        assert report.ok and report.baselined == 1

    def test_baseline_survives_line_moves(self, tmp_path):
        write_tree(
            tmp_path,
            {"core/mod.py": "# a new leading comment\n\n\n" + ID_ORDER_SNIPPET},
        )
        baseline = tmp_path / "analysis" / "lint_baseline.json"
        baseline.parent.mkdir()
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "RPR103",
                            "file": "core/mod.py",
                            "symbol": "key",
                            "reason": "matching is symbol-based",
                        }
                    ]
                }
            )
        )
        assert run_lint(tmp_path).ok

    def test_stale_entry_is_error(self, tmp_path):
        write_tree(tmp_path, {"core/mod.py": "X = 1\n"})
        baseline = tmp_path / "analysis" / "lint_baseline.json"
        baseline.parent.mkdir()
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "RPR103",
                            "file": "core/mod.py",
                            "symbol": "key",
                            "reason": "the finding this covered is gone",
                        }
                    ]
                }
            )
        )
        report = run_lint(tmp_path)
        assert [finding.rule for finding in report.findings] == ["RPR001"]

    def test_entry_without_reason_is_error(self, tmp_path):
        write_tree(tmp_path, {"core/mod.py": ID_ORDER_SNIPPET})
        baseline = tmp_path / "analysis" / "lint_baseline.json"
        baseline.parent.mkdir()
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "rule": "RPR103",
                            "file": "core/mod.py",
                            "symbol": "key",
                            "reason": "",
                        }
                    ]
                }
            )
        )
        report = run_lint(tmp_path)
        assert [finding.rule for finding in report.findings] == ["RPR002"]
        assert report.baselined == 1  # still matched, but flagged


# ---------------------------------------------------------------------------
# Semantic fingerprints (RPR202)
# ---------------------------------------------------------------------------


def fingerprint_tree(tmp_path, version="1.0.0", body="def step(x):\n    return x + 1\n"):
    return write_tree(
        tmp_path,
        {
            "__init__.py": f'__version__ = "{version}"\n',
            "core/mod.py": body,
        },
    )


class TestFingerprints:
    def test_missing_manifest_flagged(self, tmp_path):
        fingerprint_tree(tmp_path)
        report = run_lint(tmp_path)
        assert "RPR202" in {finding.rule for finding in report.findings}

    def test_update_then_clean(self, tmp_path):
        fingerprint_tree(tmp_path)
        engine = LintEngine(root=tmp_path)
        engine.update_fingerprints()
        assert run_lint(tmp_path).ok

    def test_semantic_change_without_bump_fails(self, tmp_path):
        fingerprint_tree(tmp_path)
        LintEngine(root=tmp_path).update_fingerprints()
        (tmp_path / "core/mod.py").write_text("def step(x):\n    return x + 2\n")
        report = run_lint(tmp_path)
        flagged = [f for f in report.findings if f.rule == "RPR202"]
        assert flagged and flagged[0].file == "core/mod.py"

    def test_docstring_only_change_stays_clean(self, tmp_path):
        fingerprint_tree(tmp_path)
        LintEngine(root=tmp_path).update_fingerprints()
        (tmp_path / "core/mod.py").write_text(
            'def step(x):\n    """Docstrings are stripped before hashing."""\n    return x + 1\n'
        )
        assert run_lint(tmp_path).ok

    def test_bump_then_restamp_flow(self, tmp_path):
        fingerprint_tree(tmp_path)
        LintEngine(root=tmp_path).update_fingerprints()
        (tmp_path / "core/mod.py").write_text("def step(x):\n    return x * 3\n")
        (tmp_path / "__init__.py").write_text('__version__ = "1.1.0"\n')
        # Stale manifest version is itself a finding...
        assert not run_lint(tmp_path).ok
        # ...and re-stamping at the bumped version is permitted and heals it.
        update_fingerprints(tmp_path, LintEngine(root=tmp_path).contexts())
        assert run_lint(tmp_path).ok

    def test_restamp_refused_at_same_version(self, tmp_path):
        fingerprint_tree(tmp_path)
        LintEngine(root=tmp_path).update_fingerprints()
        (tmp_path / "core/mod.py").write_text("def step(x):\n    return x - 1\n")
        with pytest.raises(ValueError, match="refusing to re-stamp"):
            LintEngine(root=tmp_path).update_fingerprints()
        # The escape hatch for provably result-identical refactors.
        LintEngine(root=tmp_path).update_fingerprints(allow_same_version=True)
        assert run_lint(tmp_path).ok

    def test_new_module_flagged(self, tmp_path):
        fingerprint_tree(tmp_path)
        LintEngine(root=tmp_path).update_fingerprints()
        (tmp_path / "core/extra.py").write_text("def other():\n    return 0\n")
        flagged = [f for f in run_lint(tmp_path).findings if f.rule == "RPR202"]
        assert flagged and flagged[0].file == "core/extra.py"

    def test_fingerprint_ignores_formatting(self):
        assert module_fingerprint("x=1\n") == module_fingerprint("x = 1  # comment\n")
        assert module_fingerprint("x = 1\n") != module_fingerprint("x = 2\n")


# ---------------------------------------------------------------------------
# Cache-key purity cross-check (RPR201, project half)
# ---------------------------------------------------------------------------


SWEEP_TEMPLATE = """
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SweepSpec:
    name: str
    configs: List[object]
    scale: float = 1.0
    suite: str = "default"
    workloads: Optional[List[str]] = None
{extra_field}

def cell_cache_key(config, suite, workload, scale, simulator_version="v", sampling=None):
    payload = {{
        "config": config.to_dict(),
        "suite": suite,
        "workload": workload,
        "scale": scale,
        "simulator_version": simulator_version,
    }}
    if sampling is not None:
        payload["sampling"] = sampling.to_dict()
    return str(sorted(payload.items()))
"""


class TestCacheKeyCrossCheck:
    def test_covered_spec_passes(self, tmp_path):
        write_tree(
            tmp_path,
            {"experiments/sweep.py": SWEEP_TEMPLATE.format(extra_field="")},
        )
        assert run_lint(tmp_path).ok

    def test_unhashed_spec_field_fails(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "experiments/sweep.py": SWEEP_TEMPLATE.format(
                    extra_field="    prefetch_degree: int = 0\n"
                )
            },
        )
        flagged = [f for f in run_lint(tmp_path).findings if f.rule == "RPR201"]
        assert flagged and flagged[0].symbol == "SweepSpec"
        assert "prefetch_degree" in flagged[0].message


# ---------------------------------------------------------------------------
# Self-hosting, api facade, CLI
# ---------------------------------------------------------------------------


class TestSelfHostAndSurfaces:
    def test_repro_package_self_hosts(self):
        report = run_lint()
        assert report.ok, [finding.format() for finding in report.findings]
        assert report.files_checked > 50

    def test_api_lint(self):
        report = api.lint()
        assert report.ok
        report_bad = api.lint(BAD)
        assert not report_bad.ok

    def test_cli_exit_codes(self, capsys):
        assert cli_main(["lint"]) == 0
        assert cli_main(["lint", str(BAD)]) == 1
        assert cli_main(["lint", str(FIXTURES / "does-not-exist")]) == 2
        capsys.readouterr()

    def test_cli_json_output(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert cli_main(["lint", str(BAD), "--json", str(out)]) == 1
        payload = json.loads(out.read_text())
        assert payload["ok"] is False
        assert payload["findings"]
        capsys.readouterr()

    def test_cli_json_stdout(self, capsys):
        assert cli_main(["lint", str(GOOD), "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_cli_update_fingerprints_refuses_same_version(self, tmp_path, capsys):
        fingerprint_tree(tmp_path)
        assert cli_main(["lint", str(tmp_path), "--update-fingerprints"]) == 0
        (tmp_path / "core/mod.py").write_text("def step(x):\n    return x - 7\n")
        assert cli_main(["lint", str(tmp_path), "--update-fingerprints"]) == 2
        assert (
            cli_main(
                [
                    "lint",
                    str(tmp_path),
                    "--update-fingerprints",
                    "--allow-same-version",
                ]
            )
            == 0
        )
        capsys.readouterr()

    def test_shipped_manifest_matches_tree(self):
        """The committed fingerprints.json is in sync with the sources.

        If this fails you changed a simulator module: bump
        repro.__version__ and run `repro lint --update-fingerprints`
        (see docs/architecture.md, "Static analysis").
        """
        report = run_lint()
        assert not [f for f in report.findings if f.rule == "RPR202"]
