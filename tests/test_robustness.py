"""Tests for the fault-tolerance substrate and the hardened sweep engine.

Covers the ``repro.robustness`` package in isolation (injector
determinism, retry policy, watchdog, journal, resilient pool) and then
drives the :class:`~repro.experiments.sweep.SweepEngine` through every
recovery path with deterministic injected faults: retry-and-recover,
poison-cell quarantine, worker crashes, hung cells, crash-safe cache
writes, SIGINT drain, and journal resume.  The chaos-campaign tests pin
the acceptance bar: a faulted sweep's surviving results must be
bit-identical to a fault-free run.
"""

import json
import signal
import time

import pytest

from repro.common.config import cooo_config, scaled_baseline
from repro.common.errors import (
    CellTimeoutError,
    ConfigurationError,
    InjectedFaultError,
    SweepInterrupted,
)
from repro.experiments.sweep import ResultCache, SweepEngine, SweepSpec
from repro.robustness import (
    DEFAULT_HANG_SECONDS,
    FAULT_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    ResilientPool,
    RetryPolicy,
    SweepJournal,
    deadline,
    parse_fault_plan,
    watchdog_available,
)

#: Tiny scale and a two-workload filter keep every engine test fast.
SCALE = 0.1
WORKLOADS = ("daxpy", "reduction")


def small_spec(name="robust-sweep", scale=SCALE, workloads=WORKLOADS):
    configs = [
        scaled_baseline(window=64, memory_latency=100),
        cooo_config(iq_size=32, sliq_size=512, memory_latency=100),
    ]
    return SweepSpec(name, configs, scale=scale, workloads=workloads)


def rows_of(outcome):
    return [None if r is None else r.to_dict() for r in outcome.results]


def plan_of(*rules, seed=0, hang_seconds=DEFAULT_HANG_SECONDS):
    return FaultPlan(seed=seed, rules=tuple(rules), hang_seconds=hang_seconds)


#: No parent-blocking waits in unit tests that exercise many retries.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0, backoff_cap=0.0)


@pytest.fixture(scope="module")
def baseline_rows():
    """The fault-free ground truth every recovery test must reproduce."""
    return rows_of(SweepEngine(jobs=1).run(small_spec()))


@pytest.fixture(scope="module")
def one_result():
    from repro.api import run as simulate
    from repro.workloads import numerical

    return simulate(
        scaled_baseline(window=64, memory_latency=100),
        numerical.daxpy(elements=50),
    )


class TestFaultInjector:
    def test_decisions_replay_exactly(self):
        plan = plan_of(FaultRule("worker.crash", rate=0.5), seed=7)
        first = [
            FaultInjector(plan).decide("worker.crash", f"cell{i}:a0")
            for i in range(64)
        ]
        second = [
            FaultInjector(plan).decide("worker.crash", f"cell{i}:a0")
            for i in range(64)
        ]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 actually splits

    def test_seed_changes_the_outcome(self):
        contexts = [f"cell{i}:a0" for i in range(128)]
        rule = FaultRule("simulate.error", rate=0.5)
        a = [FaultInjector(plan_of(rule, seed=1)).decide("simulate.error", c) for c in contexts]
        b = [FaultInjector(plan_of(rule, seed=2)).decide("simulate.error", c) for c in contexts]
        assert a != b

    def test_attempt_suffix_draws_fresh(self):
        # The context carries the attempt number, so a cell that failed
        # on attempt 0 is not doomed to fail on attempt 1 — this is what
        # lets a chaos campaign converge.
        injector = FaultInjector(plan_of(FaultRule("worker.crash", rate=0.5)))
        differs = any(
            injector.decide("worker.crash", f"cell{i}:a0")
            != injector.decide("worker.crash", f"cell{i}:a1")
            for i in range(64)
        )
        assert differs

    def test_match_restricts_contexts(self):
        injector = FaultInjector(
            plan_of(FaultRule("simulate.error", rate=1.0, match="daxpy"))
        )
        assert injector.decide("simulate.error", "cfgxdaxpy:a0")
        assert not injector.decide("simulate.error", "cfgxreduction:a0")

    def test_rate_zero_and_one(self):
        silent = FaultInjector(plan_of(FaultRule("cell.hang", rate=0.0)))
        loud = FaultInjector(plan_of(FaultRule("cell.hang", rate=1.0)))
        assert not any(silent.decide("cell.hang", f"c{i}") for i in range(32))
        assert all(loud.decide("cell.hang", f"c{i}") for i in range(32))

    def test_fired_log_records_site_and_context(self):
        injector = FaultInjector(plan_of(FaultRule("cache.corrupt", rate=1.0)))
        injector.decide("cache.corrupt", "cfgxdaxpy:a0")
        injector.decide("worker.crash", "cfgxdaxpy:a0")  # no rule: quiet
        assert injector.fired == [("cache.corrupt", "cfgxdaxpy:a0")]

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            FaultRule("disk.melt", rate=0.5)

    def test_rate_out_of_bounds_rejected(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultRule("worker.crash", rate=1.5)

    def test_plan_roundtrips_through_dict(self):
        plan = plan_of(
            FaultRule("worker.crash", rate=0.25),
            FaultRule("simulate.error", rate=1.0, match="daxpy"),
            seed=42,
            hang_seconds=12.5,
        )
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan
        rebuilt = FaultInjector.from_dict(FaultInjector(plan).to_dict())
        assert rebuilt.plan == plan

    def test_parent_is_never_killed(self):
        # worker.crash / cell.hang only fire inside pool workers; in the
        # parent (serial and degraded execution) they are no-ops even at
        # rate 1.0 — an injection plan can never kill the engine itself.
        injector = FaultInjector(
            plan_of(FaultRule("worker.crash"), FaultRule("cell.hang"))
        )
        injector.crash_point("cfgxdaxpy:a0")  # would os._exit in a worker
        injector.hang_point("cfgxdaxpy:a0")  # would sleep an hour
        assert injector.fired == []


class TestParseFaultPlan:
    def test_sites_rates_and_matches(self):
        plan = parse_fault_plan(
            "worker.crash=0.25,cell.hang=0.1,simulate.error@daxpy", seed=3
        )
        assert plan.seed == 3
        assert [r.site for r in plan.rules] == [
            "worker.crash", "cell.hang", "simulate.error",
        ]
        assert [r.rate for r in plan.rules] == [0.25, 0.1, 1.0]
        assert plan.rules[2].match == "daxpy"

    def test_every_documented_site_parses(self):
        plan = parse_fault_plan(",".join(FAULT_SITES))
        assert len(plan.rules) == len(FAULT_SITES)

    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_fault_plan("worker.crash=often")

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            parse_fault_plan("worker.crash=0.5,disk.melt=0.5")

    def test_empty_plan_rejected(self):
        with pytest.raises(ConfigurationError, match="names no sites"):
            parse_fault_plan(" , ")


class TestRetryPolicy:
    def test_default_budget(self):
        policy = RetryPolicy()
        assert [policy.allows(n) for n in (0, 1, 2, 3)] == [True, True, True, False]

    def test_backoff_doubles_to_the_cap(self):
        policy = RetryPolicy()
        assert policy.backoff(0) == 0.0
        assert [policy.backoff(n) for n in (1, 2, 3)] == [0.05, 0.1, 0.2]
        assert policy.backoff(50) == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-1.0)


class TestWatchdog:
    @pytest.mark.skipif(not watchdog_available(), reason="no SIGALRM here")
    def test_deadline_interrupts_a_hang(self):
        started = time.monotonic()
        with pytest.raises(CellTimeoutError, match="cell zzz"):
            with deadline(0.2, label="cell zzz") as armed:
                assert armed
                time.sleep(10)
        assert time.monotonic() - started < 5.0

    @pytest.mark.skipif(not watchdog_available(), reason="no SIGALRM here")
    def test_deadline_restores_previous_handler(self):
        before = signal.getsignal(signal.SIGALRM)
        with deadline(5.0):
            pass
        assert signal.getsignal(signal.SIGALRM) is before

    def test_unbounded_when_no_budget(self):
        for seconds in (None, 0, -1.0):
            with deadline(seconds) as armed:
                assert armed is False


class TestSweepJournal:
    def test_append_read_roundtrip(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        assert not journal.exists()
        assert journal.read() == []
        records = [
            {"event": "sweep-start", "sweep": "s", "cells": 2},
            {"event": "cell-done", "index": 0, "key": "k0", "source": "simulated"},
            {"event": "cell-quarantined", "index": 1, "key": "k1", "attempts": 3},
        ]
        for record in records:
            journal.append(record)
        assert journal.read() == records
        assert journal.completed_keys() == {"k0"}
        assert journal.quarantined_keys() == {"k1"}
        assert list(journal.iter_events("cell-done")) == [records[1]]
        assert journal.last_start() == records[0]

    def test_torn_tail_tolerated(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.append({"event": "cell-done", "index": 0, "key": "k0"})
        journal.append({"event": "cell-done", "index": 1, "key": "k1"})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "cell-done", "index": 2, "key"')  # killed mid-append
        assert [r["key"] for r in journal.read()] == ["k0", "k1"]
        assert journal.torn_lines == 1
        assert journal.completed_keys() == {"k0", "k1"}

    def test_non_object_record_counts_as_torn(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        with open(journal.path, "w", encoding="utf-8") as handle:
            handle.write('["not", "a", "record"]\n')
        assert journal.read() == []
        assert journal.torn_lines == 1

    def test_last_start_picks_the_latest(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.append({"event": "sweep-start", "sweep": "first"})
        journal.append({"event": "sweep-end", "sweep": "first"})
        journal.append({"event": "sweep-start", "sweep": "second"})
        assert journal.last_start()["sweep"] == "second"


class TestCrashSafeCache:
    """ResultCache atomicity under the injected mid-store crash."""

    def _crashing_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.injector = FaultInjector(plan_of(FaultRule("cache.store.crash")))
        cache.fault_context = "cfgxdaxpy:a0"
        return cache

    def test_kill_mid_store_leaves_no_entry_and_no_temp(self, tmp_path, one_result):
        cache = self._crashing_cache(tmp_path)
        with pytest.raises(InjectedFaultError, match="cache.store.crash"):
            cache.store("cell-key", one_result)
        assert not cache.path_for("cell-key").exists()
        assert list(cache.cache_dir.glob("*.tmp.*")) == []
        assert cache.stores == 0
        # The retry draws a fresh context and lands the entry for real.
        cache.injector = None
        cache.store("cell-key", one_result)
        loaded = cache.load("cell-key")
        assert loaded is not None
        assert loaded.to_dict() == one_result.to_dict()

    def test_kill_mid_store_preserves_previous_entry(self, tmp_path, one_result):
        cache = ResultCache(tmp_path / "cache")
        cache.store("cell-key", one_result)
        before = cache.path_for("cell-key").read_text(encoding="utf-8")
        cache.injector = FaultInjector(plan_of(FaultRule("cache.store.crash")))
        cache.fault_context = "cfgxdaxpy:a1"
        with pytest.raises(InjectedFaultError):
            cache.store("cell-key", one_result)
        # Atomicity: the destination still holds the complete old payload.
        assert cache.path_for("cell-key").read_text(encoding="utf-8") == before
        assert cache.load("cell-key") is not None

    def test_injected_corruption_is_quarantined_on_load(self, tmp_path, one_result):
        cache = ResultCache(tmp_path / "cache")
        cache.injector = FaultInjector(plan_of(FaultRule("cache.corrupt")))
        cache.fault_context = "cfgxdaxpy:a0"
        cache.store("cell-key", one_result)  # stored, then scribbled over
        cache.injector = None
        assert cache.load("cell-key") is None
        assert cache.corrupt == 1
        assert cache.quarantined == 1
        # Evidence preserved for post-mortem, entry path freed for re-store.
        assert (cache.corrupt_dir / "cell-key.json").exists()
        assert not cache.path_for("cell-key").exists()
        cache.store("cell-key", one_result)
        assert cache.load("cell-key") is not None

    def test_clear_purges_quarantined_corpses(self, tmp_path, one_result):
        cache = ResultCache(tmp_path / "cache")
        cache.injector = FaultInjector(plan_of(FaultRule("cache.corrupt")))
        cache.store("cell-key", one_result)
        cache.injector = None
        cache.load("cell-key")  # quarantines the corrupt entry
        cache.store("other-key", one_result)
        assert cache.clear() == 1  # corpses are purged but not counted
        assert list(cache.corrupt_dir.glob("*.json")) == []


def _pool_flaky(payload, attempt):
    """Succeeds once ``attempt`` reaches ``payload`` (its failure count)."""
    if attempt < payload:
        raise ValueError(f"flaky until attempt {payload}")
    return payload * payload


def _pool_poison(payload, attempt):
    raise RuntimeError("always broken")


class TestResilientPool:
    def test_runs_everything_and_preserves_results(self):
        pool = ResilientPool(_pool_flaky, 2, retry=FAST_RETRY)
        outcome = pool.run([(i, 0, "") for i in range(8)])
        assert outcome.results == {i: 0 for i in range(8)}
        assert not outcome.failures
        assert outcome.retries == 0 and outcome.worker_deaths == 0

    def test_retries_until_the_budget(self):
        events = []
        pool = ResilientPool(
            _pool_flaky,
            2,
            retry=FAST_RETRY,
            on_event=lambda kind, **info: events.append((kind, info)),
        )
        outcome = pool.run([(n, n, "") for n in range(3)])
        assert outcome.results == {0: 0, 1: 1, 2: 4}
        assert outcome.retries == 3  # one for payload 1, two for payload 2
        assert not outcome.failures
        retry_events = [info for kind, info in events if kind == "retry"]
        assert {e["task_id"] for e in retry_events} == {1, 2}
        assert all("delay" in e and "attempt" in e for e in retry_events)

    def test_poison_task_quarantined_not_raised(self):
        events = []
        pool = ResilientPool(
            _pool_poison,
            2,
            retry=FAST_RETRY,
            on_event=lambda kind, **info: events.append((kind, info)),
        )
        outcome = pool.run([("good", 0, ""), ("bad", 0, "")])
        # _pool_poison fails both; this checks the shape of quarantine.
        assert set(outcome.failures) == {"good", "bad"}
        failure = outcome.failures["bad"]
        assert failure.attempts == FAST_RETRY.max_attempts
        assert all("RuntimeError: always broken" in e for e in failure.errors)
        kinds = [kind for kind, _ in events]
        assert kinds.count("quarantine") == 2
        assert kinds.count("task-error") == 2 * FAST_RETRY.max_attempts

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ResilientPool(_pool_flaky, 0)


class TestSerialRecovery:
    def test_injected_error_retries_and_recovers(self, baseline_rows):
        # Every cell fails its first attempt and succeeds on the retry;
        # the final results must not know the difference.
        injector = FaultInjector(
            plan_of(FaultRule("simulate.error", rate=1.0, match=":a0"))
        )
        engine = SweepEngine(jobs=1, injector=injector, retry=FAST_RETRY)
        outcome = engine.run(small_spec())
        assert outcome.retries == 4
        assert outcome.failed_cells == []
        assert rows_of(outcome) == baseline_rows
        assert len(injector.fired) == 4

    def test_poison_cells_quarantined_not_raised(self, baseline_rows):
        injector = FaultInjector(
            plan_of(FaultRule("simulate.error", rate=1.0, match="daxpy"))
        )
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, backoff_cap=0.0)
        outcome = SweepEngine(jobs=1, injector=injector, retry=policy).run(small_spec())
        # Cells are config-major: daxpy sits at indexes 0 and 2.
        assert outcome.quarantined == 2
        assert [e["index"] for e in outcome.failed_cells] == [0, 2]
        for entry in outcome.failed_cells:
            assert entry["workload"] == "daxpy"
            assert entry["attempts"] == 2
            assert any("InjectedFaultError" in err for err in entry["errors"])
        assert outcome.results[0] is None and outcome.results[2] is None
        rows = rows_of(outcome)
        assert rows[1] == baseline_rows[1] and rows[3] == baseline_rows[3]

    def test_journal_records_the_whole_run(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        SweepEngine(jobs=1, journal=journal).run(small_spec())
        events = [r["event"] for r in journal.read()]
        assert events[0] == "sweep-start"
        assert events.count("cell-done") == 4
        assert events[-1] == "sweep-end"
        start = journal.last_start()
        assert start["cells"] == 4 and start["keys_digest"]
        done = list(journal.iter_events("cell-done"))
        assert all(r["source"] == "simulated" and r["key"] for r in done)

    def test_failed_attempts_are_journaled(self, tmp_path):
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        injector = FaultInjector(
            plan_of(FaultRule("simulate.error", rate=1.0, match="daxpy"))
        )
        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, backoff_cap=0.0)
        SweepEngine(jobs=1, injector=injector, retry=policy, journal=journal).run(
            small_spec()
        )
        events = [r["event"] for r in journal.read()]
        assert events.count("cell-failed") == 4  # 2 cells x 2 attempts
        assert events.count("cell-quarantined") == 2
        assert events.count("cell-done") == 2


class TestSigintAndResume:
    def _engine(self, tmp_path, **kwargs):
        return SweepEngine(
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            journal=SweepJournal(tmp_path / "sweep.jsonl"),
            **kwargs,
        )

    def test_interrupt_then_resume_simulates_only_the_pending(
        self, tmp_path, baseline_rows
    ):
        injector = FaultInjector(
            plan_of(FaultRule("sweep.sigint", rate=1.0, match="collect:2"))
        )
        engine = self._engine(tmp_path, injector=injector)
        with pytest.raises(SweepInterrupted) as excinfo:
            engine.run(small_spec())
        assert excinfo.value.completed == 2
        assert excinfo.value.pending == 2
        assert "--resume" in str(excinfo.value)
        assert excinfo.value.journal == engine.journal.path
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        interrupted = list(journal.iter_events("sweep-interrupted"))
        assert interrupted == [
            {"event": "sweep-interrupted", "completed": 2, "pending": 2}
        ]

        resumed_engine = self._engine(tmp_path, resume=True)
        outcome = resumed_engine.run(small_spec())
        assert outcome.resumed == 2
        assert outcome.cached == 2
        assert outcome.simulated == 2  # zero journaled cells re-simulate
        assert outcome.failed_cells == []
        assert rows_of(outcome) == baseline_rows
        events = [r["event"] for r in journal.read()]
        assert "sweep-resume" in events and events[-1] == "sweep-end"

    def test_resume_after_a_complete_run_simulates_nothing(self, tmp_path):
        spec = small_spec()
        first = self._engine(tmp_path).run(spec)
        assert first.simulated == 4
        outcome = self._engine(tmp_path, resume=True).run(spec)
        assert outcome.simulated == 0
        assert outcome.resumed == 4

    def test_foreign_journal_never_skips_cells(self, tmp_path):
        # A journal full of cell-done records for some *other* sweep must
        # not suppress any of this spec's cells.
        journal = SweepJournal(tmp_path / "sweep.jsonl")
        for index in range(4):
            journal.append(
                {"event": "cell-done", "index": index, "key": f"alien-{index}"}
            )
        engine = self._engine(tmp_path, resume=True)
        outcome = engine.run(small_spec())
        assert outcome.resumed == 0
        assert outcome.simulated == 4

    def test_resume_without_journal_is_harmless(self):
        outcome = SweepEngine(jobs=1, resume=True).run(small_spec())
        assert outcome.resumed == 0
        assert outcome.simulated == 4


class TestParallelRecovery:
    def test_worker_crash_recovers_bit_identically(self, baseline_rows):
        # Every cell's first attempt hard-kills its worker (as if
        # OOM-killed); the pool respawns and the retries converge.
        injector = FaultInjector(
            plan_of(FaultRule("worker.crash", rate=1.0, match=":a0"))
        )
        engine = SweepEngine(
            jobs=2, injector=injector, retry=FAST_RETRY, max_worker_deaths=16
        )
        outcome = engine.run(small_spec())
        assert outcome.worker_deaths == 4
        assert outcome.retries >= 4
        assert not outcome.degraded
        assert outcome.failed_cells == []
        assert rows_of(outcome) == baseline_rows

    def test_pool_degrades_to_serial_when_workers_keep_dying(self, baseline_rows):
        # rate 1.0 with no match: every attempt in any worker dies, so
        # the pool gives up respawning and the parent (where the crash
        # site never fires) finishes the sweep serially.
        injector = FaultInjector(plan_of(FaultRule("worker.crash", rate=1.0)))
        engine = SweepEngine(
            jobs=2, injector=injector, retry=FAST_RETRY, max_worker_deaths=1
        )
        outcome = engine.run(small_spec())
        assert outcome.degraded
        assert outcome.worker_deaths >= 1
        assert outcome.failed_cells == []
        assert rows_of(outcome) == baseline_rows

    def test_hung_cell_killed_by_watchdog_and_retried(self, baseline_rows):
        injector = FaultInjector(
            plan_of(
                FaultRule("cell.hang", rate=1.0, match="daxpy:a0"),
                hang_seconds=30.0,
            )
        )
        engine = SweepEngine(
            jobs=2,
            injector=injector,
            retry=FAST_RETRY,
            cell_timeout=1.0,
            max_worker_deaths=16,
        )
        outcome = engine.run(small_spec())
        assert outcome.timeouts == 2  # both configs' daxpy first attempts
        assert outcome.failed_cells == []
        assert rows_of(outcome) == baseline_rows


class TestChaosCampaign:
    """The acceptance bar: surviving results are bit-identical."""

    #: Seed chosen so the fixed plan fires worker crashes, simulate
    #: errors and cache corruption at least once each across the 4-cell
    #: grid while every cell still recovers within the retry budget
    #: (verified by replaying the decision function over the cell
    #: contexts; see FaultInjector._draw).
    SEED = 12
    PLAN = "worker.crash=0.3,simulate.error=0.3,cache.corrupt=0.3"

    def test_campaign_recovers_bit_identically(self, tmp_path, baseline_rows):
        injector = FaultInjector(parse_fault_plan(self.PLAN, seed=self.SEED))
        engine = SweepEngine(
            jobs=2,
            cache=ResultCache(tmp_path / "cache"),
            journal=SweepJournal(tmp_path / "sweep.jsonl"),
            injector=injector,
            retry=FAST_RETRY,
        )
        outcome = engine.run(small_spec())
        assert outcome.quarantined == 0
        assert outcome.retries >= 1
        assert rows_of(outcome) == baseline_rows

    def test_campaign_replays_exactly(self, tmp_path, baseline_rows):
        # Same plan, same seed, fresh everything: the recovery telemetry
        # replays exactly, not just the results.
        tallies = []
        for run in ("a", "b"):
            injector = FaultInjector(parse_fault_plan(self.PLAN, seed=self.SEED))
            engine = SweepEngine(
                jobs=2,
                cache=ResultCache(tmp_path / f"cache-{run}"),
                injector=injector,
                retry=FAST_RETRY,
            )
            outcome = engine.run(small_spec())
            assert rows_of(outcome) == baseline_rows
            tallies.append(
                (outcome.retries, outcome.worker_deaths, outcome.quarantined)
            )
        assert tallies[0] == tallies[1]

    def test_serial_campaign_matches_too(self, baseline_rows):
        injector = FaultInjector(parse_fault_plan(self.PLAN, seed=self.SEED))
        outcome = SweepEngine(jobs=1, injector=injector, retry=FAST_RETRY).run(
            small_spec()
        )
        assert outcome.quarantined == 0
        assert rows_of(outcome) == baseline_rows


class TestOptIn:
    """No injector, no new behavior: the robustness machinery is opt-in."""

    def test_bare_engine_computes_no_cache_keys(self):
        # Without a cache or journal the engine must not spend time
        # hashing configs into keys (the pre-robustness hot path).
        engine = SweepEngine(jobs=1)
        slots, keys = engine._load_cached(small_spec().cells(), small_spec())
        assert keys == ["", "", "", ""]
        assert slots == [None, None, None, None]

    def test_robust_knobs_leave_results_bit_identical(self, baseline_rows):
        engine = SweepEngine(
            jobs=1,
            cell_timeout=300.0,
            retry=RetryPolicy(max_attempts=5),
            max_worker_deaths=99,
        )
        outcome = engine.run(small_spec())
        assert rows_of(outcome) == baseline_rows
        assert outcome.retries == 0
        assert outcome.failed_cells == []

    def test_api_run_many_rejects_robust_knobs_with_explicit_traces(self, tmp_path):
        from repro import api
        from repro.workloads import numerical

        config = scaled_baseline(window=64, memory_latency=100)
        trace = numerical.daxpy(elements=50)
        with pytest.raises(ValueError, match="suite mode"):
            api.run_many(
                [config],
                traces={"daxpy": trace},
                journal=SweepJournal(tmp_path / "j.jsonl"),
            )
        with pytest.raises(ValueError, match="suite mode"):
            api.run_many([config], traces={"daxpy": trace}, cell_timeout=1.0)


class TestRobustnessCLI:
    def test_bad_inject_plan_exits_2(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--suite", "pointer-chase", "--no-cache", "--quiet",
                  "--inject", "disk.melt=0.5"])
        assert excinfo.value.code == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_resume_requires_journal(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--suite", "pointer-chase", "--no-cache", "--quiet",
                  "--resume"])
        assert excinfo.value.code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_injected_sigint_exits_130_then_resume_completes(self, capsys, tmp_path):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        journal = str(tmp_path / "sweep.jsonl")
        base = ["sweep", "--suite", "pointer-chase", "--scale", "0.05",
                "--quiet", "--cache-dir", cache_dir, "--journal", journal]
        code = main(base + ["--inject", "sweep.sigint@collect:3"])
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted" in captured.err
        assert "3 cell(s) completed" in captured.err
        assert "--resume" in captured.err

        code = main(base + ["--resume"])
        captured = capsys.readouterr()
        assert code == 0
        assert "3 resumed from journal" in captured.err
        assert "13 simulated" in captured.err

    def test_quarantine_reported_in_summary(self, capsys):
        from repro.cli import main

        code = main(["sweep", "--suite", "pointer-chase", "--scale", "0.05",
                     "--quiet", "--no-cache", "--retries", "1",
                     "--inject", "simulate.error@chase_cold"])
        captured = capsys.readouterr()
        assert code == 0  # partial sweep reports, it does not crash
        assert "4 quarantined" in captured.err
        assert "quarantined:" in captured.err
        assert "InjectedFaultError" in captured.err
