"""Tests for the statistics primitives."""

import pytest

from repro.common.stats import (
    Counter,
    Histogram,
    RunningMean,
    StatsRegistry,
    WeightedDistribution,
    arithmetic_mean,
    geometric_mean,
    harmonic_mean,
    percentile,
    ratio,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_add_default_is_one(self):
        counter = Counter("x")
        counter.add()
        counter.add()
        assert counter.value == 2

    def test_add_amount_and_set(self):
        counter = Counter("x")
        counter.add(5)
        counter.set(3)
        assert counter.value == 3

    def test_reset(self):
        counter = Counter("x", 10)
        counter.reset()
        assert counter.value == 0


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean("x").mean == 0.0

    def test_mean_min_max(self):
        mean = RunningMean("x")
        for value in (1, 2, 3, 10):
            mean.sample(value)
        assert mean.mean == pytest.approx(4.0)
        assert mean.min == 1
        assert mean.max == 10
        assert mean.count == 4

    def test_reset(self):
        mean = RunningMean("x")
        mean.sample(5)
        mean.reset()
        assert mean.count == 0
        assert mean.max is None


class TestHistogram:
    def test_add_and_total(self):
        histogram = Histogram("x")
        histogram.add("a", 2)
        histogram.add("b")
        assert histogram.total() == 3

    def test_fraction(self):
        histogram = Histogram("x")
        histogram.add("a", 3)
        histogram.add("b", 1)
        assert histogram.fraction("a") == pytest.approx(0.75)
        assert histogram.fraction("missing") == 0.0

    def test_empty_fraction_is_zero(self):
        assert Histogram("x").fraction("a") == 0.0

    def test_as_dict_is_a_copy(self):
        histogram = Histogram("x")
        histogram.add("a")
        copy = histogram.as_dict()
        copy["a"] = 99
        assert histogram.buckets["a"] == 1


class TestWeightedDistribution:
    def test_percentile_on_uniform_weights(self):
        dist = WeightedDistribution("x")
        for value in range(1, 11):
            dist.sample(value)
        assert dist.percentile(0.5) == 5
        assert dist.percentile(1.0) == 10
        assert dist.percentile(0.0) == 0 or dist.percentile(0.0) <= 1

    def test_percentile_respects_weights(self):
        dist = WeightedDistribution("x")
        dist.sample(1, weight=90)
        dist.sample(100, weight=10)
        assert dist.percentile(0.5) == 1
        assert dist.percentile(0.95) == 100

    def test_mean(self):
        dist = WeightedDistribution("x")
        dist.sample(2, weight=1)
        dist.sample(4, weight=3)
        assert dist.mean() == pytest.approx(3.5)

    def test_empty(self):
        dist = WeightedDistribution("x")
        assert dist.percentile(0.5) == 0
        assert dist.mean() == 0.0


class TestPercentileHelper:
    def test_empty_sequence(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == pytest.approx(5.0)

    def test_extremes(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0


class TestMeans:
    def test_ratio_safe_division(self):
        assert ratio(4, 2) == 2
        assert ratio(4, 0) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_falls_back_on_zero(self):
        assert geometric_mean([0, 4]) == pytest.approx(2.0)

    def test_harmonic_mean(self):
        assert harmonic_mean([1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([]) == 0.0


class TestStatsRegistry:
    def test_counter_is_memoised(self):
        registry = StatsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_value_default(self):
        registry = StatsRegistry()
        assert registry.value("missing", default=7.0) == 7.0

    def test_snapshot_contains_counters_and_means(self):
        registry = StatsRegistry()
        registry.counter("hits").add(3)
        registry.running_mean("occ").sample(10)
        registry.histogram("classes").add("moved")
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 3
        assert snapshot["occ.mean"] == 10
        assert snapshot["classes"] == {"moved": 1}

    def test_snapshot_contains_distributions(self):
        registry = StatsRegistry()
        registry.distribution("inflight").sample(5, weight=2)
        snapshot = registry.snapshot()
        assert snapshot["inflight"]["weights"] == {5: 2}
        assert snapshot["inflight"]["mean"] == 5

    def test_reset_clears_everything(self):
        registry = StatsRegistry()
        registry.counter("a").add()
        registry.running_mean("b").sample(1)
        registry.reset()
        assert registry.value("a") == 0
        assert registry.mean("b") == 0.0
