"""Tests of the sampled-execution subsystem (SamplingPlan + fast-forward).

Covers the plan itself (validation, scheduling, parsing, serialisation),
the functional warmer's state fidelity (caches and BTB must end up
bit-identical to detailed execution over the same span), the result
layer (sampled fields, JSON round trip, cache-key separation), the
api/CLI threading, and the statistical properties the ISSUE pins down:
sampled IPC on stationary kernels lands within tolerance of the exact
run, and a plan with nothing to fast-forward reproduces the exact
result bit for bit.
"""

import json

import pytest

from repro import api
from repro.common.config import (
    ProcessorConfig,
    SamplingPlan,
    cooo_config,
    scaled_baseline,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import StatsRegistry
from repro.core.registry_machines import create_pipeline
from repro.core.result import SimulationResult
from repro.core.sampling import FunctionalWarmer, run_sampled
from repro.experiments.sweep import cell_cache_key
from repro.memory.hierarchy import CacheHierarchy
from repro.branch import BranchTargetBuffer, build_predictor
from repro.workloads import daxpy, dense_branches
from repro.workloads.registry import get_suite


MEMORY_LATENCY = 300


def small_baseline(window: int = 1024) -> ProcessorConfig:
    return scaled_baseline(window=window, memory_latency=MEMORY_LATENCY)


# ---------------------------------------------------------------------------
# SamplingPlan: validation, scheduling, parsing, serialisation
# ---------------------------------------------------------------------------


class TestSamplingPlan:
    def test_validate_accepts_sane_plan(self):
        SamplingPlan(period=1000, window=200, warmup=100).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(period=0, window=1),
            dict(period=100, window=0),
            dict(period=100, window=10, warmup=-1),
            dict(period=100, window=10, seed=-3),
            dict(period=100, window=80, warmup=30),  # warmup+window > period
        ],
    )
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            SamplingPlan(**kwargs).validate()

    def test_schedule_covers_trace_exactly(self):
        plan = SamplingPlan(period=1000, window=200, warmup=100)
        for total in (1, 99, 100, 1000, 1001, 5432, 10_000):
            segments = plan.schedule(total)
            assert sum(sum(seg) for seg in segments) == total

    def test_schedule_layout(self):
        plan = SamplingPlan(period=1000, window=200, warmup=100)
        segments = plan.schedule(2500)
        # period 1: detailed region at the start (offset 0), then skip.
        assert segments[0] == (0, 100, 200)
        assert segments[1] == (700, 100, 200)
        assert segments[2] == (700, 100, 200)
        # 200-instruction tail is too short for a warmed window.
        assert segments[3] == (200, 0, 0)

    def test_schedule_tail_shorter_than_warmup_is_skipped(self):
        plan = SamplingPlan(period=1000, window=200, warmup=100)
        segments = plan.schedule(1050)
        # The 50-instruction tail merges into the preceding skip segment.
        assert segments[-1] == (750, 0, 0)

    def test_seed_offsets_first_window_deterministically(self):
        plan = SamplingPlan(period=1000, window=200, warmup=100, seed=7)
        offset = plan.first_window_offset()
        assert 0 < offset <= 700
        assert plan.first_window_offset() == offset  # deterministic
        assert plan.schedule(3000)[0][0] == offset
        other = SamplingPlan(period=1000, window=200, warmup=100, seed=8)
        assert other.first_window_offset() != offset or other.seed != plan.seed

    def test_seed_zero_pins_window_to_period_start(self):
        assert SamplingPlan(period=1000, window=200, seed=0).first_window_offset() == 0

    def test_continuous_plan_has_no_fast_forward(self):
        plan = SamplingPlan(period=300, window=200, warmup=100)
        assert plan.fast_forward_per_period == 0
        assert plan.detail_fraction == 1.0

    def test_round_trip(self):
        plan = SamplingPlan(period=1000, window=200, warmup=100, seed=5)
        assert SamplingPlan.from_dict(plan.to_dict()) == plan

    def test_parse_forms(self):
        assert SamplingPlan.parse("1000:200") == SamplingPlan(1000, 200)
        assert SamplingPlan.parse("1000:200:50") == SamplingPlan(1000, 200, 50)
        assert SamplingPlan.parse("1000:200:50:9") == SamplingPlan(1000, 200, 50, 9)

    @pytest.mark.parametrize("spec", ["", "1000", "1:2:3:4:5", "a:b", "1000:900:200"])
    def test_parse_rejects(self, spec):
        with pytest.raises(ConfigurationError):
            SamplingPlan.parse(spec)


# ---------------------------------------------------------------------------
# Functional warmer: long-lived state must match detailed execution
# ---------------------------------------------------------------------------


def _detailed_state(config, trace, upto):
    pipeline = create_pipeline(config, trace.slice(0, upto), StatsRegistry())
    pipeline.run()
    return pipeline.hierarchy, pipeline.frontend.predictor, pipeline.frontend.btb


def _warmed_state(config, trace, upto):
    stats = StatsRegistry()
    hierarchy = CacheHierarchy(config.memory, stats)
    predictor = build_predictor(config.branch, stats)
    btb = BranchTargetBuffer(config.branch, stats)
    FunctionalWarmer(config, hierarchy, predictor, btb, stats).fast_forward(trace, 0, upto)
    return hierarchy, predictor, btb


class TestFunctionalWarmer:
    def test_caches_and_btb_match_detailed_execution(self):
        """Fast-forward must leave caches/BTB exactly as a detailed run would.

        The gshare *table* is exempt by design (see GSharePredictor.warm);
        cache tag/recency state and the BTB are exactly reproducible and
        must match bit for bit.
        """
        config = small_baseline()
        trace = dense_branches(iterations=2000, seed=5)
        upto = len(trace) - 500
        d_hier, _d_pred, d_btb = _detailed_state(config, trace, upto)
        w_hier, _w_pred, w_btb = _warmed_state(config, trace, upto)
        assert w_hier.dl1.contents() == d_hier.dl1.contents()
        assert w_hier.l2.contents() == d_hier.l2.contents()
        assert w_hier.il1.contents() == d_hier.il1.contents()
        assert w_btb._tags == d_btb._tags
        assert w_btb._targets == d_btb._targets

    def test_gshare_history_tracks_architectural_outcomes(self):
        config = small_baseline()
        trace = dense_branches(iterations=500, seed=9)
        _hier, predictor, _btb = _warmed_state(config, trace, len(trace))
        expected = 0
        for instr in trace:
            if instr.is_branch:
                expected = ((expected << 1) | int(instr.branch_taken)) & predictor._history_mask
        assert predictor.history == expected

    def test_warming_does_not_touch_demand_statistics(self):
        config = small_baseline()
        trace = daxpy(elements=500)
        stats = StatsRegistry()
        hierarchy = CacheHierarchy(config.memory, stats)
        predictor = build_predictor(config.branch, stats)
        btb = BranchTargetBuffer(config.branch, stats)
        warmer = FunctionalWarmer(config, hierarchy, predictor, btb, stats)
        warmer.fast_forward(trace, 0, len(trace))
        snapshot = stats.snapshot()
        assert snapshot["sampling.fast_forwarded_instructions"] == len(trace)
        for name in ("mem.loads", "mem.stores", "dl1.accesses", "l2.accesses",
                     "branch.predictions", "btb.hits", "btb.misses"):
            assert snapshot.get(name, 0) == 0, name

    def test_bimodal_table_matches_detailed_training(self):
        config = small_baseline()
        config.branch.kind = "bimodal"
        config.validate()
        trace = dense_branches(iterations=800, seed=3)
        _d_hier, d_pred, _d_btb = _detailed_state(config, trace, len(trace))
        _w_hier, w_pred, _w_btb = _warmed_state(config, trace, len(trace))
        # pc-indexed training is order-exact... up to wrong-path replays,
        # which re-train the same saturating counters in the same
        # direction; on this kernel the tables end up identical.
        mismatches = sum(1 for a, b in zip(d_pred._counters, w_pred._counters) if a != b)
        assert mismatches <= len([i for i in trace if i.is_branch]) // 20


# ---------------------------------------------------------------------------
# Sampled results: structure, serialisation, cache keys
# ---------------------------------------------------------------------------


class TestSampledResult:
    @pytest.fixture(scope="class")
    def sampled(self):
        trace = daxpy(elements=3000)  # 21000 instructions
        plan = SamplingPlan(period=5000, window=800, warmup=300)
        return api.run(small_baseline(4096), trace, sampling=plan)

    def test_sampled_fields(self, sampled):
        assert sampled.sampled is True
        assert sampled.windows, "expected at least one measurement window"
        assert sampled.committed_instructions == sum(
            w["instructions"] for w in sampled.windows
        )
        assert sampled.cycles == sum(w["cycles"] for w in sampled.windows)
        for window in sampled.windows:
            assert window["cycles"] > 0
            assert window["ipc"] == pytest.approx(
                window["instructions"] / window["cycles"]
            )

    def test_sampling_counters(self, sampled):
        assert sampled.stat("sampling.windows") == len(sampled.windows)
        detailed = sampled.stat("sampling.detailed_instructions")
        fast_forwarded = sampled.stat("sampling.fast_forwarded_instructions")
        assert detailed + fast_forwarded == len(daxpy(elements=3000))

    def test_json_round_trip(self, sampled):
        restored = SimulationResult.from_dict(
            json.loads(json.dumps(sampled.to_dict()))
        )
        assert restored == sampled
        assert restored.ipc_ci95 == sampled.ipc_ci95

    def test_exact_result_dict_has_no_sampling_keys(self):
        exact = api.run(small_baseline(), daxpy(elements=60))
        data = exact.to_dict()
        assert "sampled" not in data
        assert "windows" not in data
        restored = SimulationResult.from_dict(json.loads(json.dumps(data)))
        assert restored == exact

    def test_ipc_interval_brackets_ipc(self, sampled):
        low, high = sampled.ipc_interval
        assert low <= sampled.ipc <= high

    def test_cache_key_separates_sampled_from_exact(self):
        config = small_baseline()
        plan = SamplingPlan(period=5000, window=800, warmup=300)
        exact_key = cell_cache_key(config, "spec2000fp_like", "daxpy", 0.5)
        sampled_key = cell_cache_key(
            config, "spec2000fp_like", "daxpy", 0.5, sampling=plan
        )
        other_plan_key = cell_cache_key(
            config, "spec2000fp_like", "daxpy", 0.5,
            sampling=SamplingPlan(period=5000, window=800, warmup=301),
        )
        assert len({exact_key, sampled_key, other_plan_key}) == 3

    def test_cache_key_without_sampling_unchanged(self):
        """sampling=None must not perturb any pre-existing cache key."""
        config = small_baseline()
        assert cell_cache_key(config, "spec2000fp_like", "daxpy", 0.5) == (
            cell_cache_key(config, "spec2000fp_like", "daxpy", 0.5, sampling=None)
        )


# ---------------------------------------------------------------------------
# Statistical properties (the ISSUE's accuracy contract)
# ---------------------------------------------------------------------------


class TestSampledAccuracy:
    def test_period_equals_window_reproduces_exact_result(self):
        """No fast-forward slack => bit-identical to the unsampled run."""
        trace = daxpy(elements=800)
        config = small_baseline()
        exact = api.run(config, trace)
        cont = api.run(config, trace, sampling=SamplingPlan(period=500, window=500))
        assert cont.cycles == exact.cycles
        assert cont.committed_instructions == exact.committed_instructions
        assert cont.fetched_instructions == exact.fetched_instructions
        assert cont.stats == exact.stats
        assert cont.ipc == exact.ipc
        assert cont.sampled is True
        assert cont.windows

    def test_continuous_windows_partition_the_run(self):
        trace = daxpy(elements=800)
        cont = api.run(
            small_baseline(), trace, sampling=SamplingPlan(period=500, window=500)
        )
        assert sum(w["instructions"] for w in cont.windows) == len(trace)
        assert sum(w["cycles"] for w in cont.windows) == cont.cycles

    def test_trace_shorter_than_warmup_falls_back_to_exact(self):
        trace = daxpy(elements=40)  # 280 instructions
        config = small_baseline()
        plan = SamplingPlan(period=100_000, window=5_000, warmup=2_000)
        sampled = api.run(config, trace, sampling=plan)
        exact = api.run(config, trace)
        assert sampled.cycles == exact.cycles
        assert sampled.ipc == exact.ipc
        assert sampled.sampled is True

    def test_daxpy_sampled_ipc_close_to_exact(self):
        """Stationary streaming kernel: sampled within CI or 5% of exact."""
        trace = daxpy(elements=12_000)  # 84000 instructions
        config = small_baseline(4096)
        exact = api.run(config, trace)
        sampled = api.run(
            config, trace, sampling=SamplingPlan(period=12_000, window=1_200, warmup=400)
        )
        tolerance = max(sampled.ipc_ci95, 0.05 * exact.ipc)
        assert abs(sampled.ipc - exact.ipc) <= tolerance

    def test_dense_branches_exact_within_sampled_ci(self):
        """Branchy stationary kernel: the exact IPC lands in the reported CI.

        gshare only self-trains under detailed execution, so branchy
        plans need a long warmup (see GSharePredictor.warm); the window
        variance then covers the residual predictor-state bias.
        """
        trace = dense_branches(iterations=10_000)  # 60000 instructions
        config = small_baseline(4096)
        exact = api.run(config, trace)
        sampled = api.run(
            config, trace,
            sampling=SamplingPlan(period=20_000, window=4_000, warmup=4_000),
        )
        assert sampled.ipc_ci95 > 0
        tolerance = max(sampled.ipc_ci95, 0.05 * exact.ipc)
        assert abs(sampled.ipc - exact.ipc) <= tolerance

    def test_cooo_sampled_ipc_close_to_exact(self):
        """The checkpointed machine extrapolates too (fat windows)."""
        trace = daxpy(elements=10_000)
        config = cooo_config(iq_size=64, sliq_size=1024, memory_latency=MEMORY_LATENCY)
        exact = api.run(config, trace)
        sampled = api.run(
            config, trace,
            sampling=SamplingPlan(period=35_000, window=8_000, warmup=4_000),
        )
        tolerance = max(sampled.ipc_ci95, 0.05 * exact.ipc)
        assert abs(sampled.ipc - exact.ipc) <= tolerance

    def test_thin_cooo_window_falls_back_to_segment_measurement(self):
        """A window thinner than the commit quantum must not fabricate IPC.

        The checkpointed machine commits whole checkpoints; a segment
        that fits in one checkpoint drains in a single burst, making the
        commit-watermark span meaningless (IPC in the hundreds).  The
        driver detects the physically impossible rate (above commit
        width) and measures the whole segment instead.
        """
        trace = daxpy(elements=4_000)
        config = cooo_config(iq_size=64, sliq_size=1024, memory_latency=500)
        sampled = api.run(
            config, trace, sampling=SamplingPlan(period=4_000, window=300, warmup=100)
        )
        assert sampled.stat("sampling.degenerate_windows") > 0
        width = config.core.commit_width
        for window in sampled.windows:
            assert window["ipc"] <= width, window

    def test_confidence_interval_uses_student_t(self):
        from repro.core.sampling import _confidence_interval

        # Two windows (df=1): the multiplier is 12.706, not 1.96.
        ipcs = [1.0, 2.0]
        mean = 1.5
        se = (sum((v - mean) ** 2 for v in ipcs) / 1 / 2) ** 0.5
        assert _confidence_interval(ipcs) == pytest.approx(12.706 * se)
        assert _confidence_interval([1.0]) == 0.0

    def test_sampled_matches_force_per_cycle(self):
        """Detailed windows ride the event-driven kernel; results identical."""
        trace = daxpy(elements=2_000)
        config = small_baseline()
        plan = SamplingPlan(period=4_000, window=600, warmup=200)
        fast = api.run(config, trace, sampling=plan)
        slow = api.run(config, trace, sampling=plan, force_per_cycle=True)
        assert fast == slow

    def test_seeded_plans_measure_different_windows(self):
        trace = daxpy(elements=4_000)
        config = small_baseline()
        base = api.run(
            config, trace, sampling=SamplingPlan(period=7_000, window=700, warmup=200)
        )
        shifted = api.run(
            config, trace,
            sampling=SamplingPlan(period=7_000, window=700, warmup=200, seed=11),
        )
        assert [w["start"] for w in base.windows] != [w["start"] for w in shifted.windows]
        # Same stationary kernel: the two estimates still agree closely.
        assert shifted.ipc == pytest.approx(base.ipc, rel=0.05)


# ---------------------------------------------------------------------------
# api / run_many / CLI threading
# ---------------------------------------------------------------------------


class TestSamplingThreading:
    def test_simulation_validates_plan(self):
        with pytest.raises(ConfigurationError):
            api.Simulation(
                small_baseline(), sampling=SamplingPlan(period=10, window=20)
            )

    def test_stop_when_rejected_with_sampling(self):
        with pytest.raises(ValueError, match="stop_when"):
            api.Simulation(
                small_baseline(),
                sampling=SamplingPlan(period=1000, window=100),
                stop_when=lambda p: True,
            )

    def test_run_many_explicit_traces_sampled(self):
        trace = daxpy(elements=2_000)
        plan = SamplingPlan(period=5_000, window=700, warmup=200)
        results = api.run_many(
            [small_baseline()], {"daxpy": trace}, sampling=plan
        )
        (config, per_workload), = results
        assert per_workload["daxpy"].sampled is True

    def test_run_many_suite_mode_sampled_and_cached(self, tmp_path):
        from repro.experiments.sweep import ResultCache

        plan = SamplingPlan(period=2_000, window=400, warmup=100)
        cache = ResultCache(tmp_path)
        kwargs = dict(
            suite="pointer-chase",
            workloads=["chase_warm"],
            scale=0.2,
            cache=cache,
            sampling=plan,
        )
        results = api.run_many([small_baseline()], **kwargs)
        (_config, per_workload), = results
        assert per_workload["chase_warm"].sampled is True
        assert cache.stores == 1
        # Second run is served from the cache, bit-identically.
        again = api.run_many([small_baseline()], **kwargs)
        assert again[0][1]["chase_warm"] == per_workload["chase_warm"]
        assert cache.hits == 1
        # The exact run of the same cell does not see the sampled entry.
        exact = api.run_many(
            [small_baseline()],
            suite="pointer-chase",
            workloads=["chase_warm"],
            scale=0.2,
            cache=cache,
        )
        assert exact[0][1]["chase_warm"].sampled is False

    def test_xl_suites_registered(self):
        for name, members in [
            ("spec2000fp-xl", 8),
            ("chase-xl", 4),
            ("server-mix-xl", 3),
        ]:
            suite = get_suite(name)
            assert len(suite) == members
        # XL member = base member generator at a 50-100x budget.
        base = get_suite("spec2000fp_like").members[0]
        xl = get_suite("spec2000fp-xl").members[0]
        assert xl.name == base.name
        assert xl.generator is base.generator
        assert 50 <= xl.base_size // base.base_size <= 100

    def test_xl_sampling_plan_is_valid(self):
        from repro.workloads.xl import XL_SAMPLING

        XL_SAMPLING.validate()

    def test_run_sampled_rejects_invalid_plan(self):
        with pytest.raises(ConfigurationError):
            run_sampled(
                small_baseline(), daxpy(elements=100), SamplingPlan(period=5, window=50)
            )


class TestSamplingCLI:
    def test_simulate_with_sample(self, capsys):
        from repro.cli import main

        code = main([
            "simulate", "--machine", "baseline", "--window", "1024",
            "--workload", "daxpy", "--size", "2000",
            "--memory-latency", "300", "--sample", "5000:600:200",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "sampling: period=5000 window=600 warmup=200" in out
        assert "ipc_ci95" in out

    def test_simulate_rejects_bad_sample_spec(self, capsys):
        from repro.cli import main

        # parse_sampling exits like build_engine does on a bad cache dir.
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--workload", "daxpy", "--sample", "nonsense"])
        assert excinfo.value.code == 2
        assert "sampling spec" in capsys.readouterr().err

    def test_sweep_experiment_rejects_sample(self, capsys):
        from repro.cli import main

        assert main(["sweep", "figure09", "--sample", "1000:100"]) == 2
        assert "--sample" in capsys.readouterr().err

    def test_bench_sample_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["bench", "baseline-128", "--sample", "1000:100", "--no-record"]
        )
        assert args.sample == "1000:100"
