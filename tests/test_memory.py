"""Tests for the cache, MSHR file and memory hierarchy."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.mshr import MSHRFile


@pytest.fixture
def small_cache(stats):
    # 4 sets x 2 ways x 64-byte lines = 512 bytes
    return Cache(CacheConfig(512, 2, 64, 3, name="test"), stats)


class TestCache:
    def test_compulsory_miss_then_hit(self, small_cache):
        assert not small_cache.access(0x100)
        small_cache.fill(0x100)
        assert small_cache.access(0x100)

    def test_line_granularity(self, small_cache):
        small_cache.fill(0x100)
        assert small_cache.access(0x13F)  # same 64-byte line
        assert not small_cache.access(0x140)  # next line

    def test_lru_eviction(self, small_cache):
        # Three lines mapping to the same set in a 2-way cache.
        a, b, c = 0x000, 0x100, 0x200
        small_cache.fill(a)
        small_cache.fill(b)
        small_cache.access(a)  # make A most recently used
        small_cache.fill(c)  # evicts B
        assert small_cache.probe(a)
        assert not small_cache.probe(b)
        assert small_cache.probe(c)

    def test_dirty_eviction_reports_writeback(self, small_cache, stats):
        a, b, c = 0x000, 0x100, 0x200
        small_cache.fill(a, dirty=True)
        small_cache.fill(b)
        victim = small_cache.fill(c)
        assert victim == a
        assert stats.value("test.writebacks") == 1

    def test_clean_eviction_returns_none(self, small_cache):
        a, b, c = 0x000, 0x100, 0x200
        small_cache.fill(a)
        small_cache.fill(b)
        assert small_cache.fill(c) is None

    def test_write_hit_sets_dirty(self, small_cache):
        small_cache.fill(0x000)
        small_cache.access(0x000, is_write=True)
        small_cache.fill(0x100)
        victim = small_cache.fill(0x200)
        assert victim == 0x000

    def test_probe_does_not_touch_lru(self, small_cache):
        a, b, c = 0x000, 0x100, 0x200
        small_cache.fill(a)
        small_cache.fill(b)
        small_cache.probe(a)  # must NOT refresh recency
        small_cache.fill(c)
        assert not small_cache.probe(a)

    def test_invalidate_and_flush(self, small_cache):
        small_cache.fill(0x000)
        assert small_cache.invalidate(0x000)
        assert not small_cache.invalidate(0x000)
        small_cache.fill(0x100)
        small_cache.flush()
        assert small_cache.occupancy == 0

    def test_hit_rate(self, small_cache):
        small_cache.access(0x0)
        small_cache.fill(0x0)
        small_cache.access(0x0)
        assert small_cache.hit_rate() == pytest.approx(0.5)
        assert small_cache.miss_rate() == pytest.approx(0.5)

    def test_capacity_and_occupancy(self, small_cache):
        assert small_cache.capacity_lines == 8
        for i in range(4):
            small_cache.fill(i * 64)
        assert small_cache.occupancy == 4

    def test_contents_view(self, small_cache):
        small_cache.fill(0x000)
        contents = small_cache.contents()
        assert 0x000 in [addr for lines in contents.values() for addr in lines]


class TestMSHR:
    def test_lookup_before_ready(self, stats):
        mshr = MSHRFile("m", stats)
        mshr.allocate(0x100, ready_cycle=50, from_memory=True)
        assert mshr.lookup(0x100, cycle=10) == (50, True)

    def test_lookup_after_ready_removes_entry(self, stats):
        mshr = MSHRFile("m", stats)
        mshr.allocate(0x100, ready_cycle=50)
        assert mshr.lookup(0x100, cycle=60) is None
        assert mshr.outstanding_count == 0

    def test_capacity_limit(self, stats):
        mshr = MSHRFile("m", stats, capacity=1)
        assert mshr.allocate(0x100, 50)
        assert not mshr.allocate(0x200, 50)

    def test_clear(self, stats):
        mshr = MSHRFile("m", stats)
        mshr.allocate(0x100, 50)
        mshr.clear()
        assert mshr.outstanding_count == 0


class TestHierarchy:
    def make(self, stats, latency=200, perfect_l2=False, perfect_dl1=False):
        config = MemoryConfig(
            memory_latency=latency, perfect_l2=perfect_l2, perfect_dl1=perfect_dl1
        )
        return CacheHierarchy(config, stats)

    def test_first_access_goes_to_memory(self, stats):
        hierarchy = self.make(stats)
        result = hierarchy.data_access(0x1000_0000, False, cycle=0)
        assert result.level == "memory"
        assert result.l2_miss
        assert result.latency == 2 + 10 + 200

    def test_second_access_hits_dl1(self, stats):
        hierarchy = self.make(stats)
        hierarchy.data_access(0x1000_0000, False, cycle=0)
        result = hierarchy.data_access(0x1000_0000, False, cycle=500)
        assert result.level == "dl1"
        assert result.latency == 2
        assert not result.l2_miss

    def test_mshr_merge_counts_as_l2_miss(self, stats):
        hierarchy = self.make(stats)
        hierarchy.data_access(0x1000_0000, False, cycle=0)
        merged = hierarchy.data_access(0x1000_0008, False, cycle=10)
        assert merged.level == "mshr"
        assert merged.l2_miss
        assert merged.latency == pytest.approx(212 - 10, abs=2)

    def test_l2_hit_after_dl1_eviction(self, stats):
        hierarchy = self.make(stats)
        base = 0x2000_0000
        hierarchy.data_access(base, False, cycle=0)
        # Touch enough distinct lines to push `base` out of the 32KB DL1 but
        # keep it in the 512KB L2.
        for i in range(1, 2100):
            hierarchy.data_access(base + i * 32, False, cycle=10_000 + i)
        result = hierarchy.data_access(base, False, cycle=200_000)
        assert result.level == "l2"
        assert not result.l2_miss

    def test_perfect_l2_never_misses(self, stats):
        hierarchy = self.make(stats, perfect_l2=True)
        result = hierarchy.data_access(0x3000_0000, False, cycle=0)
        assert not result.l2_miss
        assert result.latency == 12

    def test_perfect_dl1(self, stats):
        hierarchy = self.make(stats, perfect_dl1=True)
        result = hierarchy.data_access(0x3000_0000, False, cycle=0)
        assert result.latency == 2

    def test_would_miss_l2_probe(self, stats):
        hierarchy = self.make(stats)
        addr = 0x4000_0000
        assert hierarchy.would_miss_l2(addr, cycle=0)
        hierarchy.data_access(addr, False, cycle=0)
        # While the fill is outstanding the probe still reports a miss.
        assert hierarchy.would_miss_l2(addr, cycle=5)
        # After the fill completes it reports a hit.
        assert not hierarchy.would_miss_l2(addr, cycle=1000)

    def test_inst_access_hits_after_warmup(self, stats):
        hierarchy = self.make(stats)
        first = hierarchy.inst_access(0x400, cycle=0)
        second = hierarchy.inst_access(0x400, cycle=10)
        assert first > second
        assert second == 2

    def test_store_miss_counts_memory_access(self, stats):
        hierarchy = self.make(stats)
        hierarchy.data_access(0x5000_0000, True, cycle=0)
        assert stats.value("mem.stores") == 1
        assert stats.value("mem.main_memory_accesses") == 1
        assert stats.value("mem.l2_miss_loads") == 0

    def test_flush(self, stats):
        hierarchy = self.make(stats)
        hierarchy.data_access(0x6000_0000, False, cycle=0)
        hierarchy.flush()
        assert hierarchy.would_miss_l2(0x6000_0000, cycle=10_000)
