"""Tests for traces, cursors and the trace builder."""

import pytest

from repro.common.errors import TraceError
from repro.isa import registers as regs
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OpClass
from repro.trace.trace import Trace, TraceCursor, merge_traces
from repro.workloads.builder import TraceBuilder


def make_trace(n=10):
    return Trace(
        [Instruction(pc=4 * i, op=OpClass.INT_ALU, dest=1, srcs=(2,)) for i in range(n)],
        name="synthetic",
    )


class TestTrace:
    def test_length_and_indexing(self):
        trace = make_trace(5)
        assert len(trace) == 5
        assert trace[0].pc == 0
        assert trace[4].pc == 16

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            Trace([])

    def test_mix_counts(self):
        trace = make_trace(3)
        assert trace.mix() == {"int_alu": 3}
        assert trace.count(OpClass.INT_ALU) == 3
        assert trace.count(OpClass.LOAD) == 0

    def test_fractions(self):
        instrs = [
            Instruction(pc=0, op=OpClass.LOAD, dest=1, mem_addr=0x100),
            Instruction(pc=4, op=OpClass.STORE, srcs=(1,), mem_addr=0x108),
            Instruction(pc=8, op=OpClass.BRANCH, branch_taken=False),
            Instruction(pc=12, op=OpClass.INT_ALU, dest=2),
        ]
        trace = Trace(instrs)
        assert trace.load_fraction() == pytest.approx(0.25)
        assert trace.store_fraction() == pytest.approx(0.25)
        assert trace.branch_fraction() == pytest.approx(0.25)

    def test_unique_lines_and_footprint(self):
        instrs = [
            Instruction(pc=0, op=OpClass.LOAD, dest=1, mem_addr=0),
            Instruction(pc=4, op=OpClass.LOAD, dest=1, mem_addr=8),
            Instruction(pc=8, op=OpClass.LOAD, dest=1, mem_addr=64),
        ]
        trace = Trace(instrs)
        assert trace.unique_lines(64) == 2
        assert trace.footprint_bytes(64) == 128

    def test_slice(self):
        trace = make_trace(10)
        part = trace.slice(2, 5)
        assert len(part) == 3
        assert part[0].pc == 8

    def test_slice_bounds_checked(self):
        with pytest.raises(TraceError):
            make_trace(5).slice(3, 2)
        with pytest.raises(TraceError):
            make_trace(5).slice(0, 9)

    def test_concat_and_merge(self):
        first, second = make_trace(3), make_trace(4)
        assert len(first.concat(second)) == 7
        assert len(merge_traces([first, second, first])) == 10

    def test_jsonl_roundtrip(self):
        instrs = [
            Instruction(pc=0, op=OpClass.FP_LOAD, dest=regs.fp_reg(2), mem_addr=0x1234, srcs=(1,)),
            Instruction(pc=4, op=OpClass.BRANCH, branch_taken=True, branch_target=0),
            Instruction(pc=8, op=OpClass.INT_ALU, dest=3, srcs=(3,), raises_exception=True),
        ]
        trace = Trace(instrs, name="round")
        restored = Trace.from_jsonl(trace.to_jsonl(), name="round")
        assert len(restored) == len(trace)
        for a, b in zip(trace, restored):
            assert a == b

    def test_from_jsonl_rejects_garbage(self):
        with pytest.raises(TraceError):
            Trace.from_jsonl("this is not json")


class TestTraceCursor:
    def test_fetch_in_order(self):
        trace = make_trace(4)
        cursor = TraceCursor(trace)
        fetched = [cursor.fetch().pc for _ in range(4)]
        assert fetched == [0, 4, 8, 12]
        assert cursor.exhausted
        assert cursor.fetch() is None

    def test_peek_does_not_advance(self):
        cursor = TraceCursor(make_trace(2))
        assert cursor.peek().pc == 0
        assert cursor.position == 0

    def test_fetch_block_stops_at_end(self):
        cursor = TraceCursor(make_trace(3))
        block = cursor.fetch_block(8)
        assert len(block) == 3

    def test_rewind_replays(self):
        cursor = TraceCursor(make_trace(5))
        cursor.fetch_block(5)
        cursor.rewind_to(2)
        assert cursor.position == 2
        assert cursor.remaining() == 3
        assert cursor.fetch().pc == 8

    def test_rewind_bounds_checked(self):
        cursor = TraceCursor(make_trace(5))
        with pytest.raises(TraceError):
            cursor.rewind_to(9)

    def test_invalid_start(self):
        with pytest.raises(TraceError):
            TraceCursor(make_trace(3), start=5)


class TestTraceBuilder:
    def test_pc_advances_by_default(self):
        builder = TraceBuilder("t", start_pc=0x100)
        builder.int_op(1)
        builder.int_op(2)
        trace = builder.build()
        assert trace[0].pc == 0x100
        assert trace[1].pc == 0x104

    def test_set_pc_models_loop_backedge(self):
        builder = TraceBuilder("t")
        loop_pc = builder.pc
        builder.int_op(1)
        builder.set_pc(loop_pc)
        builder.int_op(1)
        trace = builder.build()
        assert trace[0].pc == trace[1].pc

    def test_load_store_steering(self):
        builder = TraceBuilder("t")
        builder.load(regs.fp_reg(1), 0x1000)
        builder.load(regs.int_reg(1), 0x1008)
        builder.store(0x1010, regs.fp_reg(1))
        builder.store(0x1018, regs.int_reg(1))
        trace = builder.build()
        assert trace[0].op is OpClass.FP_LOAD
        assert trace[1].op is OpClass.LOAD
        assert trace[2].op is OpClass.FP_STORE
        assert trace[3].op is OpClass.STORE

    def test_branch_taken_gets_target(self):
        builder = TraceBuilder("t")
        builder.branch(taken=True)
        trace = builder.build()
        assert trace[0].branch_taken
        assert trace[0].branch_target is not None

    def test_len_tracks_emissions(self):
        builder = TraceBuilder("t")
        assert len(builder) == 0
        builder.nop()
        assert len(builder) == 1
