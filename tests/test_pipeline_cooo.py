"""Integration tests of the out-of-order-commit (checkpoint + SLIQ) pipeline."""

import pytest

from repro.common.config import cooo_config, scaled_baseline
from repro.core.pipeline import OoOCommitPipeline
from repro.core.registry_machines import create_pipeline
from repro.api import run as simulate
from repro.isa import registers as regs
from repro.isa.instruction import RetireClass
from repro.isa.opcodes import OpClass
from repro.workloads import daxpy, fp_compute_bound, random_gather, single_miss_probe
from repro.workloads.builder import TraceBuilder
from repro.workloads.integer import branchy_integer


class TestBasicExecution:
    def test_commits_every_instruction(self, fast_cooo_config, compute_trace):
        result = simulate(fast_cooo_config, compute_trace)
        assert result.committed_instructions == len(compute_trace)
        assert 0 < result.ipc <= 4.0

    def test_factory_builds_cooo(self, fast_cooo_config, compute_trace):
        assert isinstance(create_pipeline(fast_cooo_config, compute_trace), OoOCommitPipeline)

    def test_memory_bound_trace_completes(self, fast_cooo_config, small_daxpy_trace):
        result = simulate(fast_cooo_config, small_daxpy_trace)
        assert result.committed_instructions == len(small_daxpy_trace)

    def test_single_instruction(self, fast_cooo_config):
        builder = TraceBuilder("one")
        builder.int_op(regs.int_reg(1))
        result = simulate(fast_cooo_config, builder.build())
        assert result.committed_instructions == 1

    def test_stores_drain_exactly_once(self, fast_cooo_config, small_daxpy_trace):
        result = simulate(fast_cooo_config, small_daxpy_trace)
        assert result.stat("mem.stores") == small_daxpy_trace.count(OpClass.FP_STORE)

    def test_sliq_disabled_still_works(self, compute_trace):
        config = cooo_config(iq_size=32, sliq_size=64, memory_latency=50)
        config.sliq.enabled = False
        result = simulate(config, compute_trace)
        assert result.committed_instructions == len(compute_trace)


class TestCheckpointing:
    def test_checkpoints_created_and_committed(self, fast_cooo_config, small_daxpy_trace):
        pipeline = create_pipeline(fast_cooo_config, small_daxpy_trace)
        result = pipeline.run()
        created = result.stat("checkpoint.created")
        committed = result.stat("checkpoint.committed")
        assert created >= len(small_daxpy_trace) / 600
        assert committed >= created - fast_cooo_config.checkpoint.table_size
        assert pipeline.occupancy.in_flight == 0

    def test_checkpoint_occupancy_bounded_by_table(self, small_daxpy_trace):
        config = cooo_config(iq_size=16, sliq_size=128, checkpoints=4, memory_latency=100)
        pipeline = create_pipeline(config, small_daxpy_trace)
        pipeline.run()
        assert pipeline.checkpoints.occupancy <= 4

    def test_paper_heuristic_spacing(self):
        # A long branch-free region must still be checkpointed every 512
        # instructions (the hard threshold).
        builder = TraceBuilder("flat")
        for i in range(1400):
            builder.fp_add(regs.fp_reg(1 + (i % 4) + 2), regs.fp_reg(0))
        builder.branch(taken=False)
        config = cooo_config(iq_size=64, sliq_size=256, memory_latency=20)
        result = simulate(config, builder.build())
        assert result.checkpoints_created >= 3

    def test_full_checkpoint_table_does_not_deadlock(self, small_daxpy_trace):
        config = cooo_config(iq_size=32, sliq_size=256, checkpoints=2, memory_latency=300)
        result = simulate(config, small_daxpy_trace)
        assert result.committed_instructions == len(small_daxpy_trace)
        assert result.stat("checkpoint.full_stalls") > 0

    def test_more_checkpoints_never_hurt_much(self):
        trace = daxpy(elements=120)
        few = simulate(cooo_config(iq_size=64, sliq_size=512, checkpoints=2, memory_latency=300), trace)
        many = simulate(cooo_config(iq_size=64, sliq_size=512, checkpoints=16, memory_latency=300), trace)
        assert many.ipc >= few.ipc * 0.95


class TestSLIQBehaviour:
    def test_dependents_of_miss_are_moved(self):
        trace = single_miss_probe(dependents=8, padding=40)
        config = cooo_config(iq_size=16, sliq_size=64, memory_latency=400)
        result = simulate(config, trace)
        breakdown = result.pseudo_rob_breakdown()
        assert breakdown.get(RetireClass.MOVED.value, 0) > 0
        assert result.stat("sliq.inserts") >= 1

    def test_no_moves_without_misses(self, compute_trace):
        config = cooo_config(iq_size=16, sliq_size=64, memory_latency=400)
        result = simulate(config, compute_trace)
        assert result.stat("sliq.inserts") == 0

    def test_reinsert_delay_is_second_order(self):
        trace = daxpy(elements=150)
        fast = simulate(cooo_config(iq_size=64, sliq_size=512, memory_latency=500, reinsert_delay=1), trace)
        slow = simulate(cooo_config(iq_size=64, sliq_size=512, memory_latency=500, reinsert_delay=12), trace)
        assert slow.ipc >= fast.ipc * 0.85

    def test_small_iq_with_large_sliq_beats_small_baseline(self):
        trace = daxpy(elements=200)
        cooo = simulate(cooo_config(iq_size=32, sliq_size=512, memory_latency=500), trace)
        baseline = simulate(scaled_baseline(window=32, memory_latency=500), trace)
        assert cooo.ipc > baseline.ipc * 1.5

    def test_sliq_size_matters_for_memory_bound_code(self):
        trace = random_gather(elements=300)
        small = simulate(cooo_config(iq_size=32, sliq_size=64, memory_latency=500), trace)
        large = simulate(cooo_config(iq_size=32, sliq_size=1024, memory_latency=500), trace)
        assert large.ipc >= small.ipc

    def test_in_flight_exceeds_issue_queue_size(self):
        trace = daxpy(elements=300)
        config = cooo_config(iq_size=32, sliq_size=1024, memory_latency=500)
        result = simulate(config, trace)
        assert result.mean_in_flight > 32 * 3

    def test_figure12_categories_sum_to_one(self, small_daxpy_trace):
        config = cooo_config(iq_size=16, sliq_size=128, memory_latency=200)
        result = simulate(config, small_daxpy_trace)
        breakdown = result.pseudo_rob_breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown.get(RetireClass.STORE.value, 0) > 0


class TestRecovery:
    def test_mispredicted_branches_recover(self):
        trace = branchy_integer(iterations=120, taken_probability=0.5)
        config = cooo_config(iq_size=32, sliq_size=128, memory_latency=100)
        result = simulate(config, trace)
        assert result.committed_instructions == len(trace)
        total_recoveries = result.stat("branch.pseudo_rob_recoveries") + result.stat(
            "branch.checkpoint_recoveries"
        )
        assert total_recoveries > 10

    def test_checkpoint_rollback_replays_instructions(self):
        # A mispredictable branch stuck behind a long L2 miss leaves the
        # pseudo-ROB before resolving, forcing checkpoint rollbacks.
        trace = branchy_integer(iterations=150, taken_probability=0.5)
        config = cooo_config(iq_size=16, sliq_size=256, checkpoints=4, memory_latency=600)
        result = simulate(config, trace)
        assert result.committed_instructions == len(trace)
        if result.stat("checkpoint.rollbacks") > 0:
            assert result.fetched_instructions > result.committed_instructions

    def test_exception_uses_checkpoint_and_is_precise(self, fast_cooo_config):
        builder = TraceBuilder("exc")
        for i in range(80):
            builder.fp_add(regs.fp_reg(2 + i % 4), regs.fp_reg(0))
        builder.emit(OpClass.INT_ALU, dest=regs.int_reg(3), raises_exception=True)
        for _ in range(20):
            builder.int_op(regs.int_reg(4), regs.int_reg(3))
        builder.branch(taken=False)
        result = simulate(fast_cooo_config, builder.build())
        assert result.stat("exceptions.delivered") == 1
        assert result.stat("exceptions.rollbacks") == 1
        assert result.committed_instructions == len(builder.build())

    def test_register_accounting_survives_recovery(self):
        trace = branchy_integer(iterations=100, taken_probability=0.5)
        config = cooo_config(iq_size=16, sliq_size=128, checkpoints=4, memory_latency=200)
        pipeline = create_pipeline(config, trace)
        pipeline.run()
        assert pipeline.regfile.in_use_count >= regs.NUM_LOGICAL_REGS
        # nothing left in flight
        assert pipeline.occupancy.in_flight == 0
        assert pipeline.int_queue.occupancy == 0
        assert pipeline.fp_queue.occupancy == 0
        assert pipeline.lsq.occupancy == 0


class TestLateAllocation:
    def test_runs_and_commits(self):
        trace = daxpy(elements=120)
        config = cooo_config(
            iq_size=64,
            sliq_size=512,
            memory_latency=300,
            virtual_tags=256,
            physical_registers=128,
            late_allocation=True,
        )
        result = simulate(config, trace)
        assert result.committed_instructions == len(trace)

    def test_fewer_virtual_tags_bound_the_window(self):
        trace = daxpy(elements=250)
        few = simulate(
            cooo_config(
                iq_size=128, sliq_size=1024, memory_latency=500,
                virtual_tags=128, physical_registers=512, late_allocation=True,
            ),
            trace,
        )
        many = simulate(
            cooo_config(
                iq_size=128, sliq_size=1024, memory_latency=500,
                virtual_tags=1024, physical_registers=512, late_allocation=True,
            ),
            trace,
        )
        assert many.ipc > few.ipc
        assert many.mean_in_flight > few.mean_in_flight

    def test_small_pool_with_large_virtual_window_does_not_deadlock(self):
        """Regression test: when the physical pool is much smaller than the
        virtual window, releases (which need completions) and claims (which
        completions need) could deadlock; the oldest window's reserve claim
        guarantees forward progress."""
        trace = daxpy(elements=200)
        config = cooo_config(
            iq_size=128, sliq_size=2048, memory_latency=500,
            virtual_tags=2048, physical_registers=128, late_allocation=True,
        )
        result = simulate(config, trace)
        assert result.committed_instructions == len(trace)

    def test_late_allocation_claims_bounded_by_pool(self):
        trace = daxpy(elements=120)
        config = cooo_config(
            iq_size=64, sliq_size=512, memory_latency=300,
            virtual_tags=512, physical_registers=256, late_allocation=True,
        )
        pipeline = create_pipeline(config, trace)
        result = pipeline.run()
        assert result.committed_instructions == len(trace)
        assert 0 < result.stat("prf.late_alloc_peak") <= 256


class TestAgainstBaseline:
    def test_cooo_with_small_queues_approaches_big_baseline(self):
        trace = daxpy(elements=300)
        cooo = simulate(cooo_config(iq_size=128, sliq_size=2048, memory_latency=500), trace)
        limit = simulate(scaled_baseline(window=4096, memory_latency=500), trace)
        assert cooo.ipc >= limit.ipc * 0.8

    def test_cooo_beats_equal_sized_baseline(self):
        trace = daxpy(elements=300)
        cooo = simulate(cooo_config(iq_size=64, sliq_size=1024, memory_latency=500), trace)
        baseline = simulate(scaled_baseline(window=64, memory_latency=500), trace)
        assert cooo.ipc > baseline.ipc * 1.5

    def test_compute_bound_code_sees_no_benefit(self):
        trace = fp_compute_bound(iterations=200, chain_length=4)
        cooo = simulate(cooo_config(iq_size=64, sliq_size=512, memory_latency=500), trace)
        baseline = simulate(scaled_baseline(window=64, memory_latency=500), trace)
        assert cooo.ipc == pytest.approx(baseline.ipc, rel=0.15)
