"""Warm-state checkpoints and parallel sampled windows (perf PR).

Three properties are load-bearing and pinned here:

* **Integrity** — checkpoint files are versioned gzip-JSON with the
  same hostile-input posture as trace files: truncation, foreign
  formats, wrong versions and tampered bodies are rejected or treated
  as misses, never adopted.  The sha256 key covers exactly what shapes
  warm state, so configs that only differ in ROB/IQ/latency knobs share
  a checkpoint while anything that changes the memory image does not.
* **Equivalence** — ``parallel_windows=N`` and checkpoint reuse are
  pure performance levers: every registered machine produces a
  bit-identical :class:`SimulationResult` serial vs parallel, cold vs
  checkpoint-hit, and under injected worker crashes.
* **Sharing** — a two-machine sampled sweep pointed at one checkpoint
  directory performs exactly one functional warm-up pass (the
  ``WARM_PASSES`` counter, mirroring ``TRACE_BUILDS`` in the sweep
  tests).
"""

import argparse
import gzip
import json

import pytest

from repro import __version__, api
from repro.common.config import SamplingPlan
from repro.common.errors import ConfigurationError, TraceError
from repro.common.stats import StatsRegistry
from repro.core import sampling as sampling_mod
from repro.core import warmstate
from repro.core.registry_machines import get_machine, machine_names
from repro.core.sampling import run_sampled, warm_checkpoint
from repro.robustness import FaultInjector, parse_fault_plan
from repro.trace.io import (
    CHECKPOINT_SUFFIX,
    WarmCheckpoint,
    checkpoint_info,
    load_checkpoint,
    save_checkpoint,
)
from repro.workloads import daxpy

MEMORY_LATENCY = 300

#: 21003-instruction daxpy => five detailed windows under this plan.
PLAN = SamplingPlan(period=5000, window=800, warmup=200)


def machine_config(mode: str):
    """A small config for ``mode`` via its registered CLI profile."""
    args = argparse.Namespace(
        window=1024,
        iq_size=32,
        sliq_size=256,
        checkpoints=8,
        memory_latency=MEMORY_LATENCY,
        reinsert_delay=4,
        virtual_tags=None,
        physical_registers=None,
        perfect_l2=False,
        late_allocation=False,
    )
    return get_machine(mode).build_cli_config(args)


@pytest.fixture(scope="module")
def trace():
    return daxpy(elements=3000)


def effective(config):
    return get_machine(config.mode).pipeline_class.effective_config(config)


# ---------------------------------------------------------------------------
# Checkpoint files: round trip, keys, hostile input
# ---------------------------------------------------------------------------


class TestCheckpointFiles:
    def test_round_trip_and_header(self, trace, tmp_path):
        config = machine_config("baseline")
        path, key, reused = warm_checkpoint(config, trace, PLAN, tmp_path)
        assert not reused
        assert path.name == f"{key}{CHECKPOINT_SUFFIX}"
        header = checkpoint_info(path)
        assert header["trace_name"] == trace.name
        assert header["instructions"] == len(trace)
        assert header["windows"] == 5
        assert header["simulator_version"] == __version__
        checkpoint = load_checkpoint(path)
        assert checkpoint.key == key
        assert checkpoint.trace_digest == trace.digest()
        assert len(checkpoint.snapshots) == len(checkpoint.boundaries) == 5

    def test_save_is_reused_not_rebuilt(self, trace, tmp_path):
        config = machine_config("baseline")
        before = sampling_mod.WARM_PASSES
        first = warm_checkpoint(config, trace, PLAN, tmp_path)
        second = warm_checkpoint(config, trace, PLAN, tmp_path)
        assert sampling_mod.WARM_PASSES == before + 1
        assert first[:2] == second[:2]
        assert (first[2], second[2]) == (False, True)

    def test_degenerate_plan_has_nothing_to_checkpoint(self, trace, tmp_path):
        continuous = SamplingPlan(period=1000, window=800, warmup=200)
        with pytest.raises(ConfigurationError, match="no warm state"):
            warm_checkpoint(machine_config("baseline"), trace, continuous, tmp_path)

    def test_key_shared_across_timing_knobs(self, trace):
        """ROB/IQ/SLIQ/latency knobs do not perturb warm state."""
        digest = trace.digest()
        base = warmstate.checkpoint_key(digest, PLAN, effective(machine_config("baseline")))
        assert base == warmstate.checkpoint_key(
            digest, PLAN, effective(machine_config("cooo"))
        )
        assert base == warmstate.checkpoint_key(
            digest, PLAN, effective(machine_config("unbounded-rob"))
        )
        wide = machine_config("baseline").copy()
        wide.core.rob_size = 8192
        wide.memory.memory_latency = 2000
        assert base == warmstate.checkpoint_key(digest, PLAN, effective(wide))

    def test_key_misses_on_warm_parameter_changes(self, trace):
        digest = trace.digest()
        base = warmstate.checkpoint_key(digest, PLAN, effective(machine_config("baseline")))
        # A machine that changes the memory image (perfect L2) misses.
        assert base != warmstate.checkpoint_key(
            digest, PLAN, effective(machine_config("perfect-l2"))
        )
        # A different plan or trace digest misses.
        other_plan = SamplingPlan(period=5000, window=900, warmup=100)
        assert base != warmstate.checkpoint_key(
            digest, other_plan, effective(machine_config("baseline"))
        )
        assert base != warmstate.checkpoint_key(
            "0" * 64, PLAN, effective(machine_config("baseline"))
        )

    def test_truncated_gzip_is_quarantined_not_adopted(self, trace, tmp_path):
        config = machine_config("baseline")
        path, key, _ = warm_checkpoint(config, trace, PLAN, tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert warmstate.load_matching_checkpoint(tmp_path, key) is None
        quarantined = list(tmp_path.glob("*.corrupt"))
        assert quarantined, "a truncated checkpoint should be quarantined"
        # The sampled run simply re-warms and matches a checkpoint-free run.
        fresh = run_sampled(config, trace, PLAN, checkpoint_dir=tmp_path)
        bare = run_sampled(config, trace, PLAN)
        assert fresh.to_dict() == bare.to_dict()

    def test_foreign_and_wrong_version_headers_rejected(self, tmp_path):
        foreign = tmp_path / f"foreign{CHECKPOINT_SUFFIX}"
        with gzip.open(foreign, "wt", encoding="utf-8") as handle:
            handle.write(json.dumps({"format": "something-else", "version": 1}) + "\n")
        with pytest.raises(TraceError, match="not a repro-warm-checkpoint"):
            checkpoint_info(foreign)
        for version in [99, True, "1", None]:
            bad = tmp_path / f"v{str(version)[:4]}{CHECKPOINT_SUFFIX}"
            with gzip.open(bad, "wt", encoding="utf-8") as handle:
                handle.write(
                    json.dumps({"format": "repro-warm-checkpoint", "version": version})
                    + "\n"
                )
            with pytest.raises(TraceError, match="unsupported checkpoint format version"):
                checkpoint_info(bad)

    def test_renamed_checkpoint_never_misadopted(self, trace, tmp_path):
        """A file whose content key differs from the requested key is a miss."""
        config = machine_config("baseline")
        path, key, _ = warm_checkpoint(config, trace, PLAN, tmp_path)
        other_key = warmstate.checkpoint_key(
            trace.digest(), PLAN, effective(machine_config("perfect-l2"))
        )
        path.rename(warmstate.checkpoint_path(tmp_path, other_key))
        assert warmstate.load_matching_checkpoint(tmp_path, other_key) is None

    def test_tampered_warm_stats_is_a_miss(self, trace, tmp_path):
        config = machine_config("baseline")
        path, key, _ = warm_checkpoint(config, trace, PLAN, tmp_path)
        checkpoint = load_checkpoint(path)
        hostile = WarmCheckpoint(
            key=checkpoint.key,
            simulator_version=checkpoint.simulator_version,
            trace_digest=checkpoint.trace_digest,
            trace_name=checkpoint.trace_name,
            instructions=checkpoint.instructions,
            plan=checkpoint.plan,
            params=checkpoint.params,
            boundaries=checkpoint.boundaries,
            snapshots=checkpoint.snapshots,
            warm_stats={"counters": [["broken"]], "distributions": []},
        )
        save_checkpoint(hostile, path)
        before = sampling_mod.WARM_PASSES
        poisoned = run_sampled(config, trace, PLAN, checkpoint_dir=tmp_path)
        assert sampling_mod.WARM_PASSES == before + 1, "tampered stats must re-warm"
        assert poisoned.to_dict() == run_sampled(config, trace, PLAN).to_dict()

    def test_instruction_count_mismatch_is_a_miss(self, trace, tmp_path):
        config = machine_config("baseline")
        path, key, _ = warm_checkpoint(config, trace, PLAN, tmp_path)
        checkpoint = load_checkpoint(path)
        hostile = WarmCheckpoint(
            key=checkpoint.key,
            simulator_version=checkpoint.simulator_version,
            trace_digest=checkpoint.trace_digest,
            trace_name=checkpoint.trace_name,
            instructions=checkpoint.instructions + 1,
            plan=checkpoint.plan,
            params=checkpoint.params,
            boundaries=checkpoint.boundaries,
            snapshots=checkpoint.snapshots,
            warm_stats=checkpoint.warm_stats,
        )
        save_checkpoint(hostile, path)
        before = sampling_mod.WARM_PASSES
        result = run_sampled(config, trace, PLAN, checkpoint_dir=tmp_path)
        assert sampling_mod.WARM_PASSES == before + 1
        assert result.to_dict() == run_sampled(config, trace, PLAN).to_dict()


# ---------------------------------------------------------------------------
# Serial == parallel, on every registered machine
# ---------------------------------------------------------------------------


class TestParallelEquivalence:
    @pytest.mark.parametrize("mode", machine_names())
    def test_parallel_windows_bit_identical(self, mode, trace):
        config = machine_config(mode)
        serial = run_sampled(config, trace, PLAN)
        parallel = run_sampled(config, trace, PLAN, parallel_windows=2)
        assert serial.to_dict() == parallel.to_dict(), (
            f"{mode}: parallel sampled windows diverged from serial"
        )

    def test_checkpoint_hit_parallel_matches_cold_serial(self, trace, tmp_path):
        config = machine_config("cooo")
        cold = run_sampled(config, trace, PLAN)
        run_sampled(config, trace, PLAN, checkpoint_dir=tmp_path)  # store
        before = sampling_mod.WARM_PASSES
        warmed = run_sampled(
            config, trace, PLAN, parallel_windows=2, checkpoint_dir=tmp_path
        )
        assert sampling_mod.WARM_PASSES == before, "expected a checkpoint hit"
        assert warmed.to_dict() == cold.to_dict()

    def test_parallel_rejects_probes_and_progress(self, trace):
        from repro.core.probes import CallbackProbe

        config = machine_config("baseline")
        probe = CallbackProbe(on_cycle=lambda pipeline: None)
        with pytest.raises(ConfigurationError, match="parallel sampled windows"):
            run_sampled(config, trace, PLAN, parallel_windows=2, probes=[probe])
        with pytest.raises(ConfigurationError, match="parallel sampled windows"):
            run_sampled(
                config, trace, PLAN, parallel_windows=2, progress=lambda p: None
            )

    def test_single_job_stays_on_serial_driver(self, trace):
        """parallel_windows=1 must not fork at all (probes still allowed)."""
        config = machine_config("baseline")
        result = run_sampled(
            config, trace, PLAN, parallel_windows=1, progress=lambda p: None
        )
        assert result.to_dict() == run_sampled(config, trace, PLAN).to_dict()

    def test_worker_crashes_recover_bit_identically(self, trace):
        """Every window's first attempt crashes; retries reproduce serial."""
        config = machine_config("cooo")
        injector = FaultInjector(parse_fault_plan("worker.crash@a0=1.0"))
        crashed = run_sampled(
            config, trace, PLAN, parallel_windows=2, injector=injector
        )
        assert crashed.to_dict() == run_sampled(config, trace, PLAN).to_dict()

    def test_api_threads_sample_jobs(self, trace, tmp_path):
        config = machine_config("baseline")
        serial = api.run(config, trace, sampling=PLAN)
        parallel = api.run(
            config,
            trace,
            sampling=PLAN,
            sample_jobs=2,
            checkpoint_dir=tmp_path,
        )
        assert serial.to_dict() == parallel.to_dict()

    def test_api_rejects_sample_knobs_without_plan(self, trace, tmp_path):
        with pytest.raises(ValueError, match="sample_jobs/checkpoint_dir"):
            api.Simulation(machine_config("baseline"), sample_jobs=2)
        with pytest.raises(ValueError, match="sample_jobs/checkpoint_dir"):
            api.Simulation(machine_config("baseline"), checkpoint_dir=tmp_path)
        with pytest.raises(ValueError, match="sample_jobs"):
            api.Simulation(machine_config("baseline"), sampling=PLAN, sample_jobs=0)


# ---------------------------------------------------------------------------
# Cross-config sharing: an N-machine sweep warms up once
# ---------------------------------------------------------------------------


class TestWarmSharing:
    def test_two_machine_sweep_single_warm_pass(self, trace, tmp_path):
        """Configs differing only in timing knobs share one functional pass."""
        machines = [machine_config("baseline"), machine_config("cooo")]
        sampling_mod.WARM_PASSES = 0
        results = api.run_many(
            machines,
            traces={trace.name: trace},
            sampling=PLAN,
            checkpoint_dir=tmp_path,
        )
        assert sampling_mod.WARM_PASSES == 1, (
            "second machine should adopt the first machine's checkpoint"
        )
        assert len(results) == 2
        for config, by_name in results:
            bare = run_sampled(config, trace, PLAN)
            assert by_name[trace.name].to_dict() == bare.to_dict()

    def test_checkpoint_dir_eviction_budget(self, trace, tmp_path):
        """checkpoint_max_bytes caps the directory like the sweep cache."""
        config = machine_config("baseline")
        run_sampled(config, trace, PLAN, checkpoint_dir=tmp_path)
        assert list(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))
        other = SamplingPlan(period=5000, window=900, warmup=100)
        run_sampled(
            config,
            trace,
            other,
            checkpoint_dir=tmp_path,
            checkpoint_max_bytes=1,
        )
        remaining = list(tmp_path.glob(f"*{CHECKPOINT_SUFFIX}"))
        assert len(remaining) == 0, "a 1-byte budget should evict everything"
