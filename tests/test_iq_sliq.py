"""Tests for the issue queues, pseudo-ROB and the SLIQ machinery."""

import pytest

from repro.common.config import SLIQConfig
from repro.common.errors import StructuralHazardError
from repro.core.iq import InstructionQueue, WakeupNetwork
from repro.core.pseudo_rob import PseudoROB
from repro.core.regfile import PhysicalRegisterFile
from repro.core.sliq import LongLatencyTracker, SlowLaneQueue
from repro.isa.instruction import DynInst, InstState, Instruction, RetireClass
from repro.isa.opcodes import OpClass


def dyn(seq, dest=None, srcs=(), phys_dest=None, phys_srcs=()):
    instr = Instruction(pc=seq * 4, op=OpClass.FP_ALU, dest=dest, srcs=tuple(srcs))
    inst = DynInst(seq=seq, trace_index=seq, instr=instr)
    inst.state = InstState.DISPATCHED
    inst.dispatch_cycle = 0
    inst.phys_dest = phys_dest
    inst.phys_srcs = list(phys_srcs)
    return inst


@pytest.fixture
def prf(stats):
    prf = PhysicalRegisterFile(32, stats)
    for _ in range(32):
        prf.allocate()
    return prf


class TestInstructionQueue:
    def test_ready_at_insert_when_sources_ready(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        prf.set_ready(3)
        inst = dyn(1, phys_srcs=(3,))
        queue.insert(inst, prf, wakeup)
        assert queue.pop_ready() is inst

    def test_waits_for_wakeup(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        inst = dyn(1, phys_srcs=(3,))
        queue.insert(inst, prf, wakeup)
        assert queue.pop_ready() is None
        prf.set_ready(3)
        woken = wakeup.notify_ready(3)
        assert woken == [inst]
        queue.mark_ready(inst)
        assert queue.pop_ready() is inst

    def test_oldest_first_selection(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        young = dyn(9)
        old = dyn(2)
        queue.insert(young, prf, wakeup)
        queue.insert(old, prf, wakeup)
        assert queue.pop_ready() is old
        assert queue.pop_ready() is young

    def test_capacity_enforced(self, stats, prf):
        queue = InstructionQueue("iq", 1, stats)
        wakeup = WakeupNetwork()
        queue.insert(dyn(1), prf, wakeup)
        assert queue.is_full
        with pytest.raises(StructuralHazardError):
            queue.insert(dyn(2), prf, wakeup)

    def test_remove_frees_entry(self, stats, prf):
        queue = InstructionQueue("iq", 1, stats)
        wakeup = WakeupNetwork()
        inst = dyn(1)
        queue.insert(inst, prf, wakeup)
        queue.remove(inst)
        assert queue.occupancy == 0
        assert not inst.in_iq

    def test_removed_instruction_not_selected(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        inst = dyn(1)
        queue.insert(inst, prf, wakeup)
        queue.remove(inst)
        assert queue.pop_ready() is None

    def test_unpop_returns_candidate(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        inst = dyn(1)
        queue.insert(inst, prf, wakeup)
        popped = queue.pop_ready()
        queue.unpop(popped)
        assert queue.pop_ready() is popped

    def test_duplicate_wakeup_subscription_does_not_double_wake(self, stats, prf):
        """Regression test: re-registration after a SLIQ round trip must not
        produce two ready-heap entries (which would issue the instruction twice)."""
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        inst = dyn(1, phys_srcs=(5,))
        queue.insert(inst, prf, wakeup)
        # Simulate a SLIQ round trip: leave the queue, come back, re-subscribe.
        queue.remove(inst)
        queue.insert(inst, prf, wakeup)
        prf.set_ready(5)
        woken_first = wakeup.notify_ready(5)
        woken_second = wakeup.notify_ready(5)
        assert woken_first.count(inst) <= 1
        assert woken_second == []

    def test_waiting_residents(self, stats, prf):
        queue = InstructionQueue("iq", 4, stats)
        wakeup = WakeupNetwork()
        ready = dyn(1)
        waiting = dyn(2, phys_srcs=(7,))
        queue.insert(ready, prf, wakeup)
        queue.insert(waiting, prf, wakeup)
        assert queue.waiting_residents() == [waiting]
        assert set(queue.residents()) == {ready, waiting}


class TestPseudoROB:
    def test_fifo_order(self, stats):
        prob = PseudoROB(4, stats)
        first, second = dyn(1), dyn(2)
        prob.insert(first)
        prob.insert(second)
        assert prob.oldest() is first
        assert prob.retire_oldest() is first
        assert prob.retire_oldest() is second

    def test_membership_flag(self, stats):
        prob = PseudoROB(4, stats)
        inst = dyn(1)
        prob.insert(inst)
        assert prob.contains(inst)
        prob.retire_oldest()
        assert not prob.contains(inst)

    def test_capacity(self, stats):
        prob = PseudoROB(1, stats)
        prob.insert(dyn(1))
        assert prob.is_full
        with pytest.raises(StructuralHazardError):
            prob.insert(dyn(2))

    def test_retire_from_empty_rejected(self, stats):
        with pytest.raises(StructuralHazardError):
            PseudoROB(2, stats).retire_oldest()

    def test_remove_squashed(self, stats):
        prob = PseudoROB(4, stats)
        keep, squash = dyn(1), dyn(2)
        prob.insert(keep)
        prob.insert(squash)
        squash.mark_squashed()
        removed = prob.remove_squashed()
        assert removed == [squash]
        assert prob.occupancy == 1

    def test_classification_histogram(self, stats):
        prob = PseudoROB(4, stats)
        prob.record_classification(RetireClass.MOVED)
        prob.record_classification(RetireClass.MOVED)
        prob.record_classification(RetireClass.STORE)
        histogram = stats.histogram("pseudo_rob.retire_class")
        assert histogram.buckets["moved"] == 2
        assert histogram.fraction("store") == pytest.approx(1 / 3)


class TestLongLatencyTracker:
    def test_mark_and_detect_dependence(self):
        tracker = LongLatencyTracker()
        load = dyn(1, dest=10, phys_dest=70)
        tracker.mark_long_latency_load(load)
        consumer = dyn(2, dest=11, srcs=(10,))
        assert tracker.dependence_root(consumer) == 70

    def test_transitive_propagation(self):
        tracker = LongLatencyTracker()
        load = dyn(1, dest=10, phys_dest=70)
        tracker.mark_long_latency_load(load)
        middle = dyn(2, dest=11, srcs=(10,))
        tracker.mark_dependent(middle, 70)
        consumer = dyn(3, dest=12, srcs=(11,))
        assert tracker.dependence_root(consumer) == 70

    def test_redefinition_clears_mark(self):
        tracker = LongLatencyTracker()
        load = dyn(1, dest=10, phys_dest=70)
        tracker.mark_long_latency_load(load)
        redefiner = dyn(2, dest=10, srcs=(5,))
        tracker.clear_redefinition(redefiner)
        consumer = dyn(3, dest=12, srcs=(10,))
        assert tracker.dependence_root(consumer) is None

    def test_clear_root(self):
        tracker = LongLatencyTracker()
        load = dyn(1, dest=10, phys_dest=70)
        tracker.mark_long_latency_load(load)
        tracker.mark_dependent(dyn(2, dest=11, srcs=(10,)), 70)
        tracker.clear_root(70)
        assert not tracker.marked_registers

    def test_reset(self):
        tracker = LongLatencyTracker()
        tracker.mark_long_latency_load(dyn(1, dest=10, phys_dest=70))
        tracker.reset()
        assert not tracker.is_marked(10)


class TestSlowLaneQueue:
    def make(self, stats, size=8, delay=2, width=2, ready_fn=None):
        config = SLIQConfig(size=size, pseudo_rob_size=4, reinsert_width=width, reinsert_delay=delay)
        return SlowLaneQueue(config, stats, ready_fn=ready_fn)

    def test_insert_and_occupancy(self, stats):
        sliq = self.make(stats)
        inst = dyn(1, phys_srcs=(5,))
        sliq.insert(inst, wakeup_preg=5, cycle=0)
        assert sliq.occupancy == 1
        assert inst.in_sliq
        assert sliq.has_waiters(5)

    def test_overflow_rejected_unless_forced(self, stats):
        sliq = self.make(stats, size=1)
        sliq.insert(dyn(1), wakeup_preg=5, cycle=0)
        with pytest.raises(StructuralHazardError):
            sliq.insert(dyn(2), wakeup_preg=5, cycle=0)
        sliq.insert(dyn(3), wakeup_preg=5, cycle=0, force=True)
        assert sliq.occupancy == 2

    def test_wakeup_moves_to_stream_and_paces_reinsertion(self, stats):
        sliq = self.make(stats, delay=2, width=2)
        instructions = [dyn(i, phys_srcs=(5,)) for i in range(1, 6)]
        for inst in instructions:
            sliq.insert(inst, wakeup_preg=5, cycle=0)
        sliq.notify_ready(5)
        reinserted = []

        def accept(inst):
            reinserted.append(inst)
            return True

        # Two cycles of start-up delay: nothing flows.
        assert sliq.step(accept) == 0
        assert sliq.step(accept) == 0
        # Then two per cycle.
        assert sliq.step(accept) == 2
        assert sliq.step(accept) == 2
        assert sliq.step(accept) == 1
        assert reinserted == instructions
        assert sliq.is_empty

    def test_wakeup_only_wakes_matching_key(self, stats):
        sliq = self.make(stats, delay=0)
        a = dyn(1, phys_srcs=(5,))
        b = dyn(2, phys_srcs=(6,))
        sliq.insert(a, wakeup_preg=5, cycle=0)
        sliq.insert(b, wakeup_preg=6, cycle=0)
        sliq.notify_ready(5)
        out = []
        sliq.step(lambda inst: out.append(inst) or True)
        assert out == [a]
        assert sliq.has_waiters(6)

    def test_ready_fn_short_circuits_wait(self, stats, prf):
        prf.set_ready(5)
        sliq = self.make(stats, delay=0, ready_fn=prf.is_ready)
        inst = dyn(1, phys_srcs=(5,))
        sliq.insert(inst, wakeup_preg=5, cycle=0)
        out = []
        sliq.step(lambda i: out.append(i) or True)
        assert out == [inst]

    def test_stalled_reinsertion_retries(self, stats):
        sliq = self.make(stats, delay=0)
        inst = dyn(1)
        sliq.insert(inst, wakeup_preg=5, cycle=0)
        sliq.notify_ready(5)
        assert sliq.step(lambda i: False) == 0
        assert sliq.occupancy == 1
        out = []
        sliq.step(lambda i: out.append(i) or True)
        assert out == [inst]

    def test_refile_via_callback_result(self, stats):
        sliq = self.make(stats, delay=0)
        inst = dyn(1, phys_srcs=(5, 9))
        sliq.insert(inst, wakeup_preg=5, cycle=0)
        sliq.notify_ready(5)
        # The callback reports the instruction still depends on register 9.
        sliq.step(lambda i: 9)
        assert sliq.has_waiters(9)
        assert not sliq.has_waiters(5)
        assert sliq.occupancy == 1

    def test_parked_dest_tracking(self, stats):
        sliq = self.make(stats, delay=0)
        inst = dyn(1, dest=3, phys_dest=44, phys_srcs=(5,))
        sliq.insert(inst, wakeup_preg=5, cycle=0)
        assert sliq.is_parked_dest(44)
        sliq.notify_ready(5)
        assert sliq.is_parked_dest(44)  # still parked while in the stream
        sliq.step(lambda i: True)
        assert not sliq.is_parked_dest(44)

    def test_remove_squashed(self, stats):
        sliq = self.make(stats)
        keep = dyn(1, phys_srcs=(5,))
        squash = dyn(2, phys_srcs=(5,))
        sliq.insert(keep, wakeup_preg=5, cycle=0)
        sliq.insert(squash, wakeup_preg=5, cycle=0)
        squash.mark_squashed()
        removed = sliq.remove_squashed()
        assert removed == [squash]
        assert sliq.occupancy == 1

    def test_squashed_entries_skipped_in_stream(self, stats):
        sliq = self.make(stats, delay=0)
        first = dyn(1, phys_srcs=(5,))
        second = dyn(2, phys_srcs=(5,))
        sliq.insert(first, wakeup_preg=5, cycle=0)
        sliq.insert(second, wakeup_preg=5, cycle=0)
        sliq.notify_ready(5)
        first.mark_squashed()
        out = []
        sliq.step(lambda i: out.append(i) or True)
        assert out == [second]
