"""Skip-equivalence of the event-driven simulation kernel.

The kernel's contract is that jumping over idle cycles is *invisible*:
every ``SimulationResult`` — cycles, IPC, every counter, occupancy means
and distributions — must be bit-identical to stepping each cycle
(``force_per_cycle=True``).  These tests enforce that property for every
registered machine over traces drawn from each scenario suite plus the
FP regime, and check the watchdog / limit / progress / probe fallback
semantics the kernel must preserve.
"""

import argparse

import pytest

from repro import api
from repro.common.config import ProcessorConfig
from repro.common.errors import DeadlockError, SimulationError
from repro.core.probes import CallbackProbe
from repro.core.registry_machines import create_pipeline, get_machine, machine_names
from repro.experiments.sweep import cell_cache_key
from repro.workloads import daxpy, get_suite, pointer_chase

#: Machines under test: everything in the registry (baseline, cooo and
#: the registered variants), built through each machine's CLI profile.
MACHINES = machine_names()

#: One small trace from each scenario suite (PR 3) plus the FP regime.
TRACE_SOURCES = [
    ("pointer-chase", lambda: get_suite("pointer-chase").members[0].build(0.05)),
    ("branch-storm", lambda: get_suite("branch-storm").members[0].build(0.05)),
    ("server-mix", lambda: get_suite("server-mix").members[0].build(0.05)),
    ("daxpy", lambda: daxpy(elements=120)),
]


def machine_config(mode: str, memory_latency: int = 400) -> ProcessorConfig:
    """A small config for ``mode`` via its registered CLI profile."""
    args = argparse.Namespace(
        window=256,
        iq_size=32,
        sliq_size=256,
        checkpoints=8,
        memory_latency=memory_latency,
        reinsert_delay=4,
        virtual_tags=None,
        physical_registers=None,
        perfect_l2=False,
        late_allocation=False,
    )
    return get_machine(mode).build_cli_config(args)


@pytest.mark.parametrize("mode", MACHINES)
@pytest.mark.parametrize("source", [name for name, _ in TRACE_SOURCES])
def test_event_driven_matches_per_cycle(mode, source):
    trace = dict(TRACE_SOURCES)[source]()
    config = machine_config(mode)
    fast = api.run(config, trace)
    slow = api.run(config, trace, force_per_cycle=True)
    assert fast.to_dict() == slow.to_dict(), (
        f"{mode} on {source}: event-driven result diverged from per-cycle"
    )


def test_occupancy_statistics_match_bit_for_bit():
    """Integrated occupancy sampling equals per-cycle sampling exactly."""
    trace = pointer_chase(hops=80)
    config = machine_config("cooo")
    fast = api.run(config, trace)
    slow = api.run(config, trace, force_per_cycle=True)
    occupancy_keys = [k for k in slow.stats if "occupancy" in k or "_dist" in k]
    assert occupancy_keys, "expected occupancy statistics in the result"
    for key in occupancy_keys:
        assert fast.stats[key] == slow.stats[key], key


def test_cache_keys_unchanged_by_kernel():
    """The sweep cache keys this PR shipped with are frozen.

    The kernel must not perturb cache identity: results are bit-identical
    to per-cycle stepping, so warm caches built before the kernel landed
    stay valid.  Pinned golden values (same policy as
    ``test_sweep.test_default_suite_keys_are_frozen``) so any refactor
    that would silently invalidate every user's warm cache fails here.
    """
    assert (
        cell_cache_key(machine_config("baseline"), "pointer-chase", "chase_cold", 0.05)
        == "9408aaf668d031f24e53682120e58a8362501689af8cf33388fa5c4527fa0206"
    )
    assert (
        machine_config("cooo").stable_hash()
        == "00f9008a7ae930e1b5f3257f7695a8d6cb27a3dfa4985de5f4413acaaa5e9efa"
    )


def test_late_allocation_writeback_retries_match():
    """The cooo late-allocation retry path (heap re-push) must stay exact."""
    trace = get_suite("pointer-chase").members[0].build(0.04)
    args_config = machine_config("cooo")
    config = args_config.copy()
    config.regalloc.late_allocation = True
    config.regalloc.virtual_tags = 512
    config.validate()
    fast = api.run(config, trace)
    slow = api.run(config, trace, force_per_cycle=True)
    assert fast.to_dict() == slow.to_dict()


def test_deadlock_fires_at_same_cycle_and_reports_span():
    """The watchdog triggers at the same simulated cycle under skipping."""
    trace = pointer_chase(hops=40)
    config = machine_config("baseline", memory_latency=5000).copy(deadlock_cycles=1000)

    def deadlock_cycle(force_per_cycle):
        pipeline = create_pipeline(config, trace)
        with pytest.raises(DeadlockError) as excinfo:
            pipeline.run(force_per_cycle=force_per_cycle)
        return pipeline.cycle, str(excinfo.value)

    fast_cycle, fast_msg = deadlock_cycle(False)
    slow_cycle, slow_msg = deadlock_cycle(True)
    assert fast_cycle == slow_cycle
    assert fast_msg == slow_msg
    # Satellite fix: the report quotes the actual no-commit simulated-cycle
    # span (which exceeds the threshold when it fires), not the threshold
    # or a driver-iteration count.
    import re

    match = re.search(r"for (\d+) simulated cycles \(threshold (\d+)\)", fast_msg)
    assert match, fast_msg
    span, threshold = int(match.group(1)), int(match.group(2))
    assert threshold == 1000
    assert span > threshold


def test_max_cycles_raises_at_same_point():
    trace = pointer_chase(hops=60)
    config = machine_config("baseline")
    for force in (False, True):
        pipeline = create_pipeline(config, trace)
        with pytest.raises(SimulationError, match="max_cycles=2000"):
            pipeline.run(max_cycles=2000, force_per_cycle=force)
        assert pipeline.cycle == 2000, "skipping must not jump past max_cycles"


def test_progress_callbacks_keep_their_cadence():
    """Skipping lands on every progress multiple, exactly like per-cycle."""
    trace = pointer_chase(hops=60)
    config = machine_config("baseline")
    seen = {}
    for force in (False, True):
        cycles = []
        api.run(
            config,
            trace,
            progress=lambda p: cycles.append(p.cycle),
            progress_interval=512,
            force_per_cycle=force,
        )
        seen[force] = cycles
    assert seen[False] == seen[True]
    assert seen[False], "expected progress callbacks during a memory-bound run"
    assert all(cycle % 512 == 0 for cycle in seen[False])


def test_on_cycle_probe_forces_per_cycle_fallback():
    """A non-skip-aware on_cycle probe must see every simulated cycle."""
    trace = pointer_chase(hops=40)
    config = machine_config("baseline")
    counted = []
    probe = CallbackProbe(on_cycle=lambda pipeline: counted.append(pipeline.cycle))
    result = api.run(config, trace, probes=[probe])
    assert len(counted) == result.cycles
    assert counted == list(range(1, result.cycles + 1))


def test_skip_aware_probe_keeps_fast_path():
    """on_cycle + on_idle_cycles together must cover every cycle exactly once."""
    trace = pointer_chase(hops=40)
    config = machine_config("baseline")
    stepped = []
    skipped = []
    probe = CallbackProbe(
        on_cycle=lambda pipeline: stepped.append(pipeline.cycle),
        on_idle_cycles=lambda pipeline, cycles: skipped.append(cycles),
    )
    result = api.run(config, trace, probes=[probe])
    assert skipped, "expected skipped idle spans on a memory-bound trace"
    assert len(stepped) + sum(skipped) == result.cycles
    assert len(stepped) < result.cycles, "the fast path should have skipped cycles"


def test_stop_predicate_forces_per_cycle():
    """stop_when is evaluated every cycle, so it disables skipping."""
    trace = pointer_chase(hops=60)
    config = machine_config("baseline")
    partial = api.run(config, trace, stop_when=lambda p: p.cycle >= 1234)
    assert partial.cycles == 1234
