"""Tests for the unified facade: registry, probes, Simulation, shims."""

from __future__ import annotations

import pytest

from repro import api
from repro.common.config import ProcessorConfig, cooo_config, scaled_baseline
from repro.common.errors import ConfigurationError
from repro.core.pipeline import BaselinePipeline, OoOCommitPipeline, build_pipeline
from repro.core.probes import PROBE_EVENTS, CallbackProbe, OccupancyProbe, Probe
from repro.core.processor import Processor, simulate
from repro.core.registry_machines import (
    create_pipeline,
    get_machine,
    machine_names,
    machine_specs,
    register_machine,
    unregister_machine,
)
from repro.experiments.sweep import ResultCache, SweepEngine, SweepSpec
from repro.workloads import daxpy
from repro.workloads.builder import TraceBuilder
from repro.workloads.integer import branchy_integer


class TestMachineRegistry:
    def test_builtins_registered(self):
        names = machine_names()
        for expected in ("baseline", "cooo", "perfect-l2", "unbounded-rob"):
            assert expected in names

    def test_specs_have_descriptions(self):
        for spec in machine_specs():
            assert spec.description, f"{spec.name} lacks a description"

    def test_get_machine_resolves_classes(self):
        assert get_machine("baseline").pipeline_class is BaselinePipeline
        assert get_machine("cooo").pipeline_class is OoOCommitPipeline
        assert get_machine("cooo").supports_late_allocation
        assert not get_machine("baseline").supports_late_allocation

    def test_unknown_mode_lists_registered_machines(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ProcessorConfig(mode="vliw").validate()
        message = str(excinfo.value)
        assert "vliw" in message
        assert "baseline" in message and "cooo" in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_machine("baseline")(OoOCommitPipeline)

    def test_reregistering_same_class_is_idempotent(self):
        assert register_machine("baseline")(BaselinePipeline) is BaselinePipeline

    def test_unregister_unknown_machine(self):
        with pytest.raises(KeyError):
            unregister_machine("no-such-machine")

    def test_register_new_machine_without_core_edits(self, small_daxpy_trace):
        """A plugin machine is validatable, runnable and listable at once."""

        @register_machine("test-narrow", description="baseline at half commit width")
        class NarrowCommitPipeline(BaselinePipeline):
            def __init__(self, config, trace, stats=None, probes=None):
                config = config.copy()
                config.core.commit_width = max(1, config.core.commit_width // 2)
                super().__init__(config, trace, stats, probes)

        try:
            assert "test-narrow" in machine_names()
            config = scaled_baseline(window=64, memory_latency=50).copy(mode="test-narrow")
            config.validate()  # registry-driven: no edits to config.py
            result = api.run(config, small_daxpy_trace)
            assert result.committed_instructions == len(small_daxpy_trace)
            assert result.mode == "test-narrow"
            baseline = api.run(
                scaled_baseline(window=64, memory_latency=50), small_daxpy_trace
            )
            assert result.cycles >= baseline.cycles
        finally:
            unregister_machine("test-narrow")
        assert "test-narrow" not in machine_names()

    def test_late_allocation_rejected_for_non_capable_machines(self):
        config = scaled_baseline(window=64, memory_latency=50)
        config.regalloc.late_allocation = True
        with pytest.raises(ConfigurationError, match="late register allocation"):
            config.validate()


class TestNewVariants:
    def test_perfect_l2_beats_plain_baseline_under_latency(self, small_daxpy_trace):
        base = scaled_baseline(window=64, memory_latency=800)
        perfect = base.copy(mode="perfect-l2")
        slow = api.run(base, small_daxpy_trace)
        fast = api.run(perfect, small_daxpy_trace)
        assert fast.ipc > 1.5 * slow.ipc
        assert fast.l2_miss_loads == 0

    def test_perfect_l2_does_not_mutate_caller_config(self, small_daxpy_trace):
        config = scaled_baseline(window=64, memory_latency=800)
        api.run(config.copy(mode="perfect-l2"), small_daxpy_trace)
        assert config.memory.perfect_l2 is False

    def test_unbounded_rob_window_exceeds_configured_rob(self):
        trace = daxpy(elements=300)
        bounded = scaled_baseline(window=64, memory_latency=300)
        unbounded = bounded.copy(mode="unbounded-rob")
        small = api.run(bounded, trace)
        ideal = api.run(unbounded, trace)
        # The configured 64-entry window cannot hold more than 64 in flight;
        # the idealised machine blows straight past it and gains IPC.
        assert small.mean_in_flight <= 64
        assert ideal.mean_in_flight > 64
        assert ideal.ipc > small.ipc

    def test_variants_sweep_and_cache(self, tmp_path):
        configs = [
            scaled_baseline(window=64, memory_latency=200).copy(mode="perfect-l2"),
            scaled_baseline(window=64, memory_latency=200).copy(mode="unbounded-rob"),
        ]
        spec = SweepSpec("variants", configs, scale=0.2, workloads=("daxpy",))
        engine = SweepEngine(cache=ResultCache(tmp_path))
        cold = engine.run(spec)
        assert cold.simulated == 2 and cold.cached == 0
        warm = SweepEngine(cache=ResultCache(tmp_path)).run(spec)
        assert warm.simulated == 0 and warm.cached == 2
        for (config, results), reference in zip(warm.per_config(), cold.per_config()):
            assert results["daxpy"].ipc == reference[1]["daxpy"].ipc

    def test_variants_runnable_from_cli(self, capsys):
        from repro.cli import main

        assert main([
            "simulate", "--machine", "unbounded-rob", "--workload", "daxpy",
            "--size", "40", "--memory-latency", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "unbounded-rob" in out

    def test_modes_subcommand_lists_machines(self, capsys):
        from repro.cli import main

        assert main(["modes"]) == 0
        out = capsys.readouterr().out
        for name in machine_names():
            assert name in out


class RecordingProbe(Probe):
    """Appends (event, seq-or-cycle) tuples for ordering assertions."""

    def on_attach(self, pipeline):
        self.events = []
        self.cycles = 0

    def on_cycle(self, pipeline):
        self.cycles += 1

    def on_dispatch(self, pipeline, inst):
        self.events.append(("dispatch", inst.seq))

    def on_issue(self, pipeline, inst):
        self.events.append(("issue", inst.seq))

    def on_complete(self, pipeline, inst):
        self.events.append(("complete", inst.seq))

    def on_commit(self, pipeline, inst):
        self.events.append(("commit", inst.seq))

    def on_squash(self, pipeline, inst):
        self.events.append(("squash", inst.seq))

    def on_checkpoint(self, pipeline, checkpoint):
        self.events.append(("checkpoint", checkpoint.uid))

    def per_instruction(self):
        ordering = {}
        for position, (event, seq) in enumerate(self.events):
            if event in ("dispatch", "issue", "complete", "commit", "squash"):
                ordering.setdefault(seq, []).append(event)
        return ordering


class TestProbes:
    def test_event_ordering_per_instruction(self, fast_baseline_config, small_daxpy_trace):
        probe = RecordingProbe()
        result = api.run(fast_baseline_config, small_daxpy_trace, probes=[probe])
        assert probe.cycles == result.cycles
        per_inst = probe.per_instruction()
        committed = [seq for seq, events in per_inst.items() if "commit" in events]
        assert len(committed) == result.committed_instructions
        for seq in committed:
            assert per_inst[seq] == ["dispatch", "issue", "complete", "commit"]

    def test_squashed_instructions_never_commit(self, fast_baseline_config):
        trace = branchy_integer(iterations=150, taken_probability=0.5)
        probe = RecordingProbe()
        api.run(fast_baseline_config, trace, probes=[probe])
        per_inst = probe.per_instruction()
        squashed = [seq for seq, events in per_inst.items() if "squash" in events]
        assert squashed, "expected mispredictions to squash instructions"
        for seq in squashed:
            assert "commit" not in per_inst[seq]
            assert per_inst[seq][-1] == "squash"

    def test_checkpoint_events_match_created_stat(self, fast_cooo_config, small_daxpy_trace):
        probe = RecordingProbe()
        result = api.run(fast_cooo_config, small_daxpy_trace, probes=[probe])
        checkpoints = [entry for entry in probe.events if entry[0] == "checkpoint"]
        assert len(checkpoints) == int(result.stat("checkpoint.created"))

    def test_probes_do_not_change_results(self, fast_cooo_config, small_daxpy_trace):
        plain = api.run(fast_cooo_config, small_daxpy_trace)
        probed = api.run(
            fast_cooo_config, small_daxpy_trace, probes=[RecordingProbe(), Probe()]
        )
        assert probed.cycles == plain.cycles
        assert probed.to_dict() == plain.to_dict()

    def test_zero_probes_same_timing_without_occupancy_stats(
        self, fast_baseline_config, small_daxpy_trace
    ):
        plain = api.run(fast_baseline_config, small_daxpy_trace)
        bare = api.run(fast_baseline_config, small_daxpy_trace, default_probes=False)
        assert bare.cycles == plain.cycles and bare.ipc == plain.ipc
        assert plain.mean_in_flight > 0
        assert "occupancy.in_flight.mean" not in bare.stats

    def test_occupancy_probe_reachable_from_pipeline(
        self, fast_baseline_config, small_daxpy_trace
    ):
        pipeline = create_pipeline(fast_baseline_config, small_daxpy_trace)
        assert isinstance(pipeline.occupancy, OccupancyProbe)
        assert pipeline.occupancy in pipeline.probes
        pipeline.run()
        assert pipeline.occupancy.in_flight == 0
        assert pipeline.occupancy.live == 0

    def test_callback_probe_and_late_attach(self, fast_baseline_config, small_daxpy_trace):
        commits = []
        pipeline = create_pipeline(fast_baseline_config, small_daxpy_trace)
        pipeline.attach_probe(
            CallbackProbe(on_commit=lambda pipe, inst: commits.append(inst.seq))
        )
        result = pipeline.run()
        assert len(commits) == result.committed_instructions
        assert commits == sorted(commits)

    def test_callback_probe_rejects_unknown_events(self):
        with pytest.raises(TypeError, match="unknown probe events"):
            CallbackProbe(on_teleport=lambda pipe: None)

    def test_probe_events_are_dispatched_only_when_overridden(
        self, fast_baseline_config, small_daxpy_trace
    ):
        pipeline = create_pipeline(
            fast_baseline_config, small_daxpy_trace, default_probes=False
        )
        for event in PROBE_EVENTS:
            assert getattr(pipeline, f"_hooks_{event[3:]}") == []
        pipeline.attach_probe(CallbackProbe(on_cycle=lambda pipe: None))
        assert len(pipeline._hooks_cycle) == 1
        assert pipeline._hooks_dispatch == []


class TestSimulationFacade:
    def test_run_matches_pipeline_run(self, fast_cooo_config, small_daxpy_trace):
        via_api = api.run(fast_cooo_config, small_daxpy_trace)
        direct = OoOCommitPipeline(fast_cooo_config, small_daxpy_trace).run()
        assert via_api.to_dict() == direct.to_dict()

    def test_machine_property(self, fast_cooo_config):
        assert api.Simulation(fast_cooo_config).machine.name == "cooo"

    def test_run_suite(self, fast_baseline_config, small_daxpy_trace, compute_trace):
        results = api.Simulation(fast_baseline_config).run_suite(
            {"daxpy": small_daxpy_trace, "compute": compute_trace}
        )
        assert set(results) == {"daxpy", "compute"}
        assert all(r.committed_instructions > 0 for r in results.values())

    def test_progress_callback_cadence(self, fast_baseline_config):
        trace = daxpy(elements=400)
        seen = []
        api.run(
            scaled_baseline(window=32, memory_latency=300),
            trace,
            progress=lambda pipeline: seen.append(pipeline.cycle),
            progress_interval=128,
        )
        assert seen, "expected at least one progress callback"
        assert all(cycle % 128 == 0 for cycle in seen)
        assert seen == sorted(seen)

    def test_early_stop_predicate(self, fast_baseline_config):
        trace = daxpy(elements=400)
        full = api.run(fast_baseline_config, trace)
        partial = api.run(
            fast_baseline_config, trace, stop_when=lambda p: p.committed >= 100
        )
        assert 100 <= partial.committed_instructions < len(trace)
        assert partial.cycles < full.cycles

    def test_invalid_progress_interval(self, fast_baseline_config):
        with pytest.raises(ValueError):
            api.Simulation(fast_baseline_config, progress_interval=0)

    def test_run_many_with_explicit_traces(self, small_daxpy_trace):
        configs = [
            scaled_baseline(window=32, memory_latency=50),
            scaled_baseline(window=64, memory_latency=50),
        ]
        messages = []
        results = api.run_many(
            configs, traces={"daxpy": small_daxpy_trace}, progress=messages.append
        )
        assert [config for config, _ in results] == configs
        assert len(messages) == 2
        for _, per_workload in results:
            assert per_workload["daxpy"].committed_instructions == len(small_daxpy_trace)

    def test_run_many_suite_mode_matches_engine(self):
        config = scaled_baseline(window=64, memory_latency=100)
        results = api.run_many([config], scale=0.2, workloads=("daxpy",))
        [(out_config, per_workload)] = results
        assert out_config is config
        spec = SweepSpec("reference", [config], scale=0.2, workloads=("daxpy",))
        reference = SweepEngine().run(spec).config_results(config)
        assert per_workload["daxpy"].ipc == reference["daxpy"].ipc

    def test_run_many_rejects_probes_in_suite_mode(self):
        with pytest.raises(ValueError, match="probes"):
            api.run_many(
                [scaled_baseline(window=64, memory_latency=100)], probes=[Probe()]
            )

    def test_run_many_rejects_jobs_with_explicit_traces(self, small_daxpy_trace):
        with pytest.raises(ValueError, match="serially"):
            api.run_many(
                [scaled_baseline(window=64, memory_latency=100)],
                traces={"daxpy": small_daxpy_trace},
                jobs=2,
            )


class TestDeprecationShims:
    def test_build_pipeline_warns_and_works(self, fast_baseline_config, small_daxpy_trace):
        with pytest.warns(DeprecationWarning, match="build_pipeline"):
            pipeline = build_pipeline(fast_baseline_config, small_daxpy_trace)
        assert isinstance(pipeline, BaselinePipeline)
        assert pipeline.run().committed_instructions == len(small_daxpy_trace)

    def test_processor_run_warns_and_matches_api(
        self, fast_baseline_config, small_daxpy_trace
    ):
        with pytest.warns(DeprecationWarning, match="Processor.run"):
            shimmed = Processor(fast_baseline_config).run(small_daxpy_trace)
        assert shimmed.to_dict() == api.run(fast_baseline_config, small_daxpy_trace).to_dict()

    def test_processor_run_suite_warns(self, fast_baseline_config, small_daxpy_trace):
        with pytest.warns(DeprecationWarning, match="run_suite"):
            results = Processor(fast_baseline_config).run_suite(
                {"daxpy": small_daxpy_trace}
            )
        assert results["daxpy"].committed_instructions == len(small_daxpy_trace)

    def test_simulate_warns_and_matches_api(self, fast_cooo_config, small_daxpy_trace):
        with pytest.warns(DeprecationWarning, match="simulate"):
            shimmed = simulate(fast_cooo_config, small_daxpy_trace)
        assert shimmed.to_dict() == api.run(fast_cooo_config, small_daxpy_trace).to_dict()


class TestExceptionTraceProbes:
    def test_exception_events_on_cooo(self, fast_cooo_config):
        from repro.isa.opcodes import OpClass

        builder = TraceBuilder("exception_probe")
        # A small block with one excepting instruction exercises rollback
        # paths; the probe must stay consistent through replay.
        for index in range(40):
            if index == 20:
                builder.emit(OpClass.INT_ALU, dest=1, srcs=(2,), raises_exception=True)
            else:
                builder.int_op(1 + index % 4, 2)
        trace = builder.build()
        probe = RecordingProbe()
        result = api.run(fast_cooo_config, trace, probes=[probe])
        assert result.committed_instructions == len(trace)
        per_inst = probe.per_instruction()
        committed = [seq for seq, events in per_inst.items() if "commit" in events]
        assert len(committed) == result.committed_instructions
